//! DC-net pad generation.
//!
//! Each client `i` and server `j` share a 32-byte secret `K_ij` (derived via
//! Diffie–Hellman, see `dissent-crypto::dh`).  In every round both sides
//! expand that secret into the same pseudo-random string
//! `s_ij = PRNG(K_ij, round)`, exactly as in Algorithms 1 and 2 of the paper.
//! The client XORs the strings for all M servers (plus its message) into its
//! ciphertext; each server XORs the strings for the clients that actually
//! submitted.  Because every string enters the combined output exactly twice,
//! all pads cancel and only the anonymous messages remain.
//!
//! The accusation process needs to re-derive *individual bits* of these
//! strings, so [`pad_bit`] is provided alongside the bulk generator.

use dissent_crypto::prng::DetPrng;

/// A 32-byte pairwise shared secret between one client and one server.
pub type SharedSecret = [u8; 32];

/// Domain-separation label binding a pad to its round.
fn round_label(round: u64) -> Vec<u8> {
    let mut label = b"dissent-dcnet-pad-round-".to_vec();
    label.extend_from_slice(&round.to_be_bytes());
    label
}

/// Generate the full pad string `s_ij` for a round.
pub fn pad(secret: &SharedSecret, round: u64, len: usize) -> Vec<u8> {
    DetPrng::new(secret, &round_label(round)).bytes(len)
}

/// XOR the pad `s_ij` for a round directly into an accumulator — the fused,
/// zero-allocation form of `xor_into(dst, &pad(secret, round, dst.len()))`.
///
/// ChaCha20 keystream is XORed straight into `dst` inside the fused
/// multi-block kernels (`dissent_crypto::chacha::chacha20_blocks8_xor` for
/// 512 B strides, `chacha20_blocks4_xor` for 256 B ones — AVX-512/AVX2/SSE2
/// dispatched, portable interleaved fallback): the keystream words meet the
/// destination in SIMD registers, so neither a per-client pad `Vec` nor a
/// per-stride keystream temp buffer is ever materialized.  This is the
/// server's dominant per-round cost (N clients × L bytes), so both the
/// block-function throughput and the memory traffic the naive form pays
/// actually show up in Figure 7/8 round times.
pub fn pad_xor_into(secret: &SharedSecret, round: u64, dst: &mut [u8]) {
    DetPrng::new(secret, &round_label(round)).xor_into(dst);
}

/// XOR `src` into `dst` in place; the buffers must have equal length.
///
/// Runs over `u64` words (see `dissent_crypto::xor`) — this is the hottest
/// loop in the system.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    dissent_crypto::xor::xor_into(dst, src);
}

/// XOR many pads into `dst` in parallel: the secrets are split into
/// `shards` contiguous groups, each group fused-accumulated into a private
/// buffer on the thread pool, and the per-shard accumulators XOR-merged
/// into `dst` in shard order.
///
/// XOR is associative and commutative, so the result is byte-identical for
/// every shard count (proptested in `tests/proptest_pad.rs`); `shards <= 1`
/// is the allocation-free serial path.
pub fn accumulate_pads_sharded(
    dst: &mut [u8],
    secrets: &[SharedSecret],
    round: u64,
    shards: usize,
) {
    let shards = shards.clamp(1, secrets.len().max(1));
    if shards <= 1 {
        for secret in secrets {
            pad_xor_into(secret, round, dst);
        }
        return;
    }
    use rayon::prelude::*;
    let chunk = secrets.len().div_ceil(shards);
    let mut partials: Vec<Vec<u8>> = Vec::new();
    secrets
        .par_chunks(chunk)
        .map(|group| {
            let mut acc = vec![0u8; dst.len()];
            for secret in group {
                pad_xor_into(secret, round, &mut acc);
            }
            acc
        })
        .collect_into_vec(&mut partials);
    for partial in &partials {
        xor_into(dst, partial);
    }
}

/// Work threshold (secrets × bytes) below which sharding costs more than
/// it saves; ~one ChaCha20 block per microsecond per core puts 64 KiB of
/// pad well under typical task dispatch + merge overhead.
const PARALLEL_PAD_MIN_BYTES: usize = 64 * 1024;

/// XOR many pads into `dst`, choosing the shard count automatically from
/// the pool size and the amount of work.
pub fn accumulate_pads(dst: &mut [u8], secrets: &[SharedSecret], round: u64) {
    let threads = rayon::current_num_threads();
    let work = secrets.len().saturating_mul(dst.len());
    let shards = if threads <= 1 || work < PARALLEL_PAD_MIN_BYTES {
        1
    } else {
        threads
    };
    accumulate_pads_sharded(dst, secrets, round, shards);
}

/// XOR an iterator of equal-length byte strings together.
///
/// Returns a zero vector of length `len` if the iterator is empty.
pub fn xor_all<'a, I: IntoIterator<Item = &'a [u8]>>(len: usize, parts: I) -> Vec<u8> {
    let mut out = vec![0u8; len];
    for p in parts {
        xor_into(&mut out, p);
    }
    out
}

/// Extract a single bit (big-endian bit order within bytes) from a buffer.
pub fn get_bit(buf: &[u8], bit_index: usize) -> bool {
    let byte = bit_index / 8;
    let bit = bit_index % 8;
    (buf[byte] >> (7 - bit)) & 1 == 1
}

/// Set or clear a single bit (big-endian bit order within bytes).
pub fn set_bit(buf: &mut [u8], bit_index: usize, value: bool) {
    let byte = bit_index / 8;
    let bit = 7 - bit_index % 8;
    if value {
        buf[byte] |= 1 << bit;
    } else {
        buf[byte] &= !(1 << bit);
    }
}

/// Recompute one bit of the pad `s_ij` for a round — the revelation step of
/// the accusation process (§3.9): servers publish `s_ij[k]` for the witness
/// bit `k` so everyone can locate the party that XORed an unmatched 1.
///
/// O(1) in the slot length: ChaCha20 is random-access, so the stream seeks
/// straight to the containing byte instead of regenerating the whole pad
/// prefix.  (The old prefix-generating form made one accusation over a
/// 128 KB bulk slot cost ~2000 ChaCha blocks per (client, server) pair; see
/// [`pad_bit_reference`], kept as the test oracle.)
pub fn pad_bit(secret: &SharedSecret, round: u64, total_len: usize, bit_index: usize) -> bool {
    assert!(bit_index / 8 < total_len, "bit index out of range");
    let mut prng = DetPrng::new(secret, &round_label(round));
    prng.seek((bit_index / 8) as u64);
    let mut byte = [0u8; 1];
    prng.fill(&mut byte);
    (byte[0] >> (7 - bit_index % 8)) & 1 == 1
}

/// Reference implementation of [`pad_bit`] that regenerates the pad prefix
/// (O(bit_index) work).  Kept as the oracle the seeked fast path is tested
/// against; not for production use.
pub fn pad_bit_reference(
    secret: &SharedSecret,
    round: u64,
    total_len: usize,
    bit_index: usize,
) -> bool {
    assert!(bit_index / 8 < total_len, "bit index out of range");
    let prefix = pad(secret, round, bit_index / 8 + 1);
    get_bit(&prefix, bit_index)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secret(tag: u8) -> SharedSecret {
        let mut s = [0u8; 32];
        s[0] = tag;
        s
    }

    #[test]
    fn pads_cancel_pairwise() {
        // One client, three servers: client XOR of pads equals the XOR of the
        // three servers' per-client pads.
        let secrets = [secret(1), secret(2), secret(3)];
        let len = 256;
        let client_side = xor_all(
            len,
            secrets
                .iter()
                .map(|s| pad(s, 7, len))
                .collect::<Vec<_>>()
                .iter()
                .map(|v| v.as_slice()),
        );
        let mut server_side = vec![0u8; len];
        for s in &secrets {
            xor_into(&mut server_side, &pad(s, 7, len));
        }
        assert_eq!(client_side, server_side);
        // XORing both sides yields all zeros — the cancellation property.
        let mut combined = client_side;
        xor_into(&mut combined, &server_side);
        assert!(combined.iter().all(|&b| b == 0));
    }

    #[test]
    fn pads_differ_across_rounds_and_secrets() {
        let a = pad(&secret(1), 1, 64);
        let b = pad(&secret(1), 2, 64);
        let c = pad(&secret(2), 1, 64);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(pad(&secret(1), 1, 64), a);
    }

    #[test]
    fn pad_bit_matches_bulk_pad() {
        let s = secret(9);
        let full = pad(&s, 42, 100);
        for bit in [0usize, 1, 7, 8, 63, 799] {
            assert_eq!(pad_bit(&s, 42, 100, bit), get_bit(&full, bit), "bit {bit}");
        }
    }

    #[test]
    fn pad_bit_matches_reference_across_block_boundaries() {
        // Bits 511/512/513 straddle the first ChaCha20 block boundary of the
        // pad stream (block = 512 bits); 1023/1024 the second.
        let s = secret(3);
        let len = 200;
        for bit in [0usize, 7, 8, 510, 511, 512, 513, 1023, 1024, 1599] {
            assert_eq!(
                pad_bit(&s, 11, len, bit),
                pad_bit_reference(&s, 11, len, bit),
                "bit {bit}"
            );
        }
    }

    #[test]
    fn fused_pad_xor_equals_pad_then_xor() {
        let s = secret(4);
        for len in [1usize, 63, 64, 65, 192, 1000] {
            let base: Vec<u8> = (0..len).map(|i| (i * 3) as u8).collect();
            let mut expected = base.clone();
            xor_into(&mut expected, &pad(&s, 5, len));
            let mut fused = base.clone();
            pad_xor_into(&s, 5, &mut fused);
            assert_eq!(fused, expected, "len {len}");
        }
    }

    #[test]
    fn sharded_accumulation_is_shard_count_invariant() {
        let secrets: Vec<SharedSecret> = (0..7).map(|i| secret(i as u8 + 1)).collect();
        let len = 300;
        let mut serial = vec![0u8; len];
        accumulate_pads_sharded(&mut serial, &secrets, 9, 1);
        for shards in [2usize, 3, 4, 7, 100] {
            let mut sharded = vec![0u8; len];
            accumulate_pads_sharded(&mut sharded, &secrets, 9, shards);
            assert_eq!(sharded, serial, "shards {shards}");
        }
        let mut auto = vec![0u8; len];
        accumulate_pads(&mut auto, &secrets, 9);
        assert_eq!(auto, serial);
    }

    #[test]
    fn bit_helpers_round_trip() {
        let mut buf = vec![0u8; 4];
        set_bit(&mut buf, 5, true);
        set_bit(&mut buf, 30, true);
        assert!(get_bit(&buf, 5));
        assert!(get_bit(&buf, 30));
        assert!(!get_bit(&buf, 6));
        set_bit(&mut buf, 5, false);
        assert!(!get_bit(&buf, 5));
        assert_eq!(buf[3], 0b0000_0010);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_into_length_mismatch_panics() {
        let mut a = vec![0u8; 3];
        xor_into(&mut a, &[0u8; 4]);
    }

    #[test]
    fn xor_all_empty_is_zero() {
        let out = xor_all(8, std::iter::empty());
        assert_eq!(out, vec![0u8; 8]);
    }
}
