//! DC-net pad generation.
//!
//! Each client `i` and server `j` share a 32-byte secret `K_ij` (derived via
//! Diffie–Hellman, see `dissent-crypto::dh`).  In every round both sides
//! expand that secret into the same pseudo-random string
//! `s_ij = PRNG(K_ij, round)`, exactly as in Algorithms 1 and 2 of the paper.
//! The client XORs the strings for all M servers (plus its message) into its
//! ciphertext; each server XORs the strings for the clients that actually
//! submitted.  Because every string enters the combined output exactly twice,
//! all pads cancel and only the anonymous messages remain.
//!
//! The accusation process needs to re-derive *individual bits* of these
//! strings, so [`pad_bit`] is provided alongside the bulk generator.

use dissent_crypto::prng::DetPrng;

/// A 32-byte pairwise shared secret between one client and one server.
pub type SharedSecret = [u8; 32];

/// Domain-separation label binding a pad to its round.
fn round_label(round: u64) -> Vec<u8> {
    let mut label = b"dissent-dcnet-pad-round-".to_vec();
    label.extend_from_slice(&round.to_be_bytes());
    label
}

/// Generate the full pad string `s_ij` for a round.
pub fn pad(secret: &SharedSecret, round: u64, len: usize) -> Vec<u8> {
    DetPrng::new(secret, &round_label(round)).bytes(len)
}

/// XOR `src` into `dst` in place; the buffers must have equal length.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_into length mismatch");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= s;
    }
}

/// XOR an iterator of equal-length byte strings together.
///
/// Returns a zero vector of length `len` if the iterator is empty.
pub fn xor_all<'a, I: IntoIterator<Item = &'a [u8]>>(len: usize, parts: I) -> Vec<u8> {
    let mut out = vec![0u8; len];
    for p in parts {
        xor_into(&mut out, p);
    }
    out
}

/// Extract a single bit (big-endian bit order within bytes) from a buffer.
pub fn get_bit(buf: &[u8], bit_index: usize) -> bool {
    let byte = bit_index / 8;
    let bit = bit_index % 8;
    (buf[byte] >> (7 - bit)) & 1 == 1
}

/// Set or clear a single bit (big-endian bit order within bytes).
pub fn set_bit(buf: &mut [u8], bit_index: usize, value: bool) {
    let byte = bit_index / 8;
    let bit = 7 - bit_index % 8;
    if value {
        buf[byte] |= 1 << bit;
    } else {
        buf[byte] &= !(1 << bit);
    }
}

/// Recompute one bit of the pad `s_ij` for a round — the revelation step of
/// the accusation process (§3.9): servers publish `s_ij[k]` for the witness
/// bit `k` so everyone can locate the party that XORed an unmatched 1.
pub fn pad_bit(secret: &SharedSecret, round: u64, total_len: usize, bit_index: usize) -> bool {
    assert!(bit_index / 8 < total_len, "bit index out of range");
    // Only the containing byte needs to be generated, but the stream must be
    // advanced identically to the bulk generator, so we generate the prefix.
    let prefix = pad(secret, round, bit_index / 8 + 1);
    get_bit(&prefix, bit_index)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secret(tag: u8) -> SharedSecret {
        let mut s = [0u8; 32];
        s[0] = tag;
        s
    }

    #[test]
    fn pads_cancel_pairwise() {
        // One client, three servers: client XOR of pads equals the XOR of the
        // three servers' per-client pads.
        let secrets = [secret(1), secret(2), secret(3)];
        let len = 256;
        let client_side = xor_all(
            len,
            secrets
                .iter()
                .map(|s| pad(s, 7, len))
                .collect::<Vec<_>>()
                .iter()
                .map(|v| v.as_slice()),
        );
        let mut server_side = vec![0u8; len];
        for s in &secrets {
            xor_into(&mut server_side, &pad(s, 7, len));
        }
        assert_eq!(client_side, server_side);
        // XORing both sides yields all zeros — the cancellation property.
        let mut combined = client_side;
        xor_into(&mut combined, &server_side);
        assert!(combined.iter().all(|&b| b == 0));
    }

    #[test]
    fn pads_differ_across_rounds_and_secrets() {
        let a = pad(&secret(1), 1, 64);
        let b = pad(&secret(1), 2, 64);
        let c = pad(&secret(2), 1, 64);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(pad(&secret(1), 1, 64), a);
    }

    #[test]
    fn pad_bit_matches_bulk_pad() {
        let s = secret(9);
        let full = pad(&s, 42, 100);
        for bit in [0usize, 1, 7, 8, 63, 799] {
            assert_eq!(pad_bit(&s, 42, 100, bit), get_bit(&full, bit), "bit {bit}");
        }
    }

    #[test]
    fn bit_helpers_round_trip() {
        let mut buf = vec![0u8; 4];
        set_bit(&mut buf, 5, true);
        set_bit(&mut buf, 30, true);
        assert!(get_bit(&buf, 5));
        assert!(get_bit(&buf, 30));
        assert!(!get_bit(&buf, 6));
        set_bit(&mut buf, 5, false);
        assert!(!get_bit(&buf, 5));
        assert_eq!(buf[3], 0b0000_0010);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_into_length_mismatch_panics() {
        let mut a = vec![0u8; 3];
        xor_into(&mut a, &[0u8; 4]);
    }

    #[test]
    fn xor_all_empty_is_zero() {
        let out = xor_all(8, std::iter::empty());
        assert_eq!(out, vec![0u8; 8]);
    }
}
