//! # dissent-dcnet
//!
//! The anytrust client/server DC-net at the heart of Dissent (OSDI 2012).
//!
//! Classic DC-nets share a secret "coin" between every pair of the N
//! participants, which makes both computation and churn-handling scale
//! badly.  Dissent instead shares secrets only between each client and each
//! of the M ≪ N servers:
//!
//! * clients compute only `M` pads per output bit ([`client`]);
//! * servers can close a round without a straggling client, because every
//!   client's ciphertext is independent of every other client's online
//!   status ([`server`]);
//! * the honest clients form one connected component of the secret-sharing
//!   graph as long as a single server is honest — the anytrust assumption.
//!
//! Modules:
//!
//! * [`pad`] — pad expansion from pairwise shared secrets, plus XOR helpers
//!   and single-bit re-derivation for the blame process.
//! * [`slots`] — the scheduling function `S(r, π(i), H)`: request bits,
//!   variable-length message slots, open/close dynamics (§3.8).
//! * [`client`] — Algorithm 1: building client cleartexts and ciphertexts.
//! * [`server`] — Algorithm 2: inventories, trimming, server ciphertexts,
//!   commitments, combination, certification digests.
//! * [`accusation`] — §3.9: witness bits, blame evaluation, rebuttals.
//!
//! Everything here is a pure, transport-agnostic state machine;
//! `dissent-core` drives these pieces over a (simulated) network and adds
//! the timing policies, and `dissent-shuffle` provides the verifiable
//! shuffle used for scheduling and accusations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accusation;
pub mod client;
pub mod pad;
pub mod server;
pub mod slots;

pub use accusation::{Accusation, BlameOutcome, Rebuttal, RebuttalOutcome};
pub use client::{ClientCiphertext, ClientDcnet, Submission};
pub use pad::SharedSecret;
pub use server::{ClientId, ServerId, SubmissionSet};
pub use slots::{RoundLayout, RoundOutput, SlotConfig, SlotOutput, SlotPayload, SlotSchedule};
