//! Client side of one DC-net exchange (Algorithm 1, step 2).
//!
//! A client forms a cleartext vector that is zero everywhere except in the
//! bit positions it owns (its request bit and, when open, its message slot),
//! XORs in one pseudo-random pad per server, and submits the result as its
//! ciphertext.  Because the client shares secrets only with the `M` servers,
//! its work is `O(M)` per output bit and its ciphertext is independent of
//! every other client's online status — the property that lets the servers
//! finish a round despite churn.

use crate::pad::{accumulate_pads, set_bit, SharedSecret};
use crate::slots::{RoundLayout, SlotPayload};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// What a client wants to transmit in one round.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Submission {
    /// Set the request bit (ask for the message slot to open next round).
    pub request_open: bool,
    /// Payload for the message slot, if it is currently open.
    pub payload: Option<SlotPayload>,
}

impl Submission {
    /// A null submission: contributes cover traffic only.
    pub fn null() -> Self {
        Submission::default()
    }

    /// Request the slot to open.
    pub fn open_request() -> Self {
        Submission {
            request_open: true,
            payload: None,
        }
    }

    /// Send a payload in the (open) message slot.
    pub fn message(payload: SlotPayload) -> Self {
        Submission {
            request_open: false,
            payload: Some(payload),
        }
    }
}

/// Per-round record a client keeps so it can later detect disruption of its
/// own slot and produce an accusation (paper §3.9).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransmissionRecord {
    /// The round the record belongs to.
    pub round: u64,
    /// The wire image the client placed in its own slot (already padded).
    pub slot_wire: Vec<u8>,
    /// Offset of the slot in the round cleartext.
    pub slot_offset: usize,
}

/// The client's DC-net engine: knows its slot index and the per-server
/// shared secrets, and turns [`Submission`]s into ciphertexts.
#[derive(Clone, Debug)]
pub struct ClientDcnet {
    slot: usize,
    server_secrets: Vec<SharedSecret>,
}

/// Result of building a ciphertext: the bytes to submit plus the record the
/// client keeps for disruption detection.
#[derive(Clone, Debug)]
pub struct ClientCiphertext {
    /// The ciphertext to send to a server.
    pub ciphertext: Vec<u8>,
    /// The transmission record (present when the client wrote to its slot).
    pub record: Option<TransmissionRecord>,
}

impl ClientDcnet {
    /// Create the engine for a client that owns `slot` and shares `server_secrets`
    /// with the servers (in server order).
    pub fn new(slot: usize, server_secrets: Vec<SharedSecret>) -> Self {
        assert!(
            !server_secrets.is_empty(),
            "a client must share a secret with at least one server"
        );
        ClientDcnet {
            slot,
            server_secrets,
        }
    }

    /// The slot index π(i) this client owns.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Number of servers this client shares secrets with.
    pub fn num_servers(&self) -> usize {
        self.server_secrets.len()
    }

    /// Build the cleartext contribution `m_i`: zero everywhere except the
    /// bits this client owns.
    pub fn cleartext<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        layout: &RoundLayout,
        submission: &Submission,
    ) -> (Vec<u8>, Option<TransmissionRecord>) {
        let mut clear = vec![0u8; layout.total_len];
        if submission.request_open {
            set_bit(&mut clear, layout.request_bit_index(self.slot), true);
        }
        let mut record = None;
        if let Some(payload) = &submission.payload {
            if let Some(range) = layout.slots[self.slot] {
                let wire = payload
                    .encode(rng, range.len)
                    .expect("payload exceeds the open slot length");
                clear[range.offset..range.offset + range.len].copy_from_slice(&wire);
                record = Some(TransmissionRecord {
                    round: layout.round,
                    slot_wire: wire,
                    slot_offset: range.offset,
                });
            }
        }
        (clear, record)
    }

    /// Produce the round ciphertext: `c_i = m_i ⊕ PRNG(K_i1) ⊕ … ⊕ PRNG(K_iM)`.
    ///
    /// The `M` per-server pads are fused-XORed into the cleartext without
    /// materializing any pad buffer — each pad expands through the
    /// multi-block ChaCha20 kernel in 256 B strides — and the fold is
    /// sharded across the thread pool when the round is large enough to pay
    /// for it (output is identical either way; see [`accumulate_pads`]).
    pub fn ciphertext<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        layout: &RoundLayout,
        submission: &Submission,
    ) -> ClientCiphertext {
        let (mut buf, record) = self.cleartext(rng, layout, submission);
        accumulate_pads(&mut buf, &self.server_secrets, layout.round);
        ClientCiphertext {
            ciphertext: buf,
            record,
        }
    }

    /// Recompute one bit of the pad this client shares with server `server_idx`
    /// for a given round — used when answering a blame rebuttal.
    pub fn pad_bit(&self, server_idx: usize, round: u64, total_len: usize, bit: usize) -> bool {
        crate::pad::pad_bit(&self.server_secrets[server_idx], round, total_len, bit)
    }

    /// The shared secret with one server (revealed only during a rebuttal,
    /// paper §3.9 final case).
    pub fn reveal_secret(&self, server_idx: usize) -> SharedSecret {
        self.server_secrets[server_idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pad::{pad, xor_into};
    use crate::slots::{SlotConfig, SlotSchedule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn secrets(n: usize, tag: u8) -> Vec<SharedSecret> {
        (0..n)
            .map(|j| {
                let mut s = [0u8; 32];
                s[0] = tag;
                s[1] = j as u8;
                s
            })
            .collect()
    }

    #[test]
    fn null_submission_is_pure_pad() {
        let mut rng = StdRng::seed_from_u64(1);
        let schedule = SlotSchedule::new_all_open(4, SlotConfig::default());
        let layout = schedule.layout();
        let client = ClientDcnet::new(2, secrets(3, 7));
        let ct = client.ciphertext(&mut rng, &layout, &Submission::null());
        assert!(ct.record.is_none());
        // XORing the three pads back recovers the all-zero cleartext.
        let mut buf = ct.ciphertext.clone();
        for j in 0..3 {
            let p = pad(&secrets(3, 7)[j], layout.round, layout.total_len);
            xor_into(&mut buf, &p);
        }
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn message_lands_in_own_slot_only() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = SlotConfig::default();
        let schedule = SlotSchedule::new_all_open(3, config.clone());
        let layout = schedule.layout();
        let client = ClientDcnet::new(1, secrets(2, 9));
        let payload = SlotPayload::message(b"post", &config);
        let (clear, record) = client.cleartext(&mut rng, &layout, &Submission::message(payload));
        let range = layout.slots[1].unwrap();
        let record = record.unwrap();
        assert_eq!(record.slot_offset, range.offset);
        assert_eq!(
            &clear[range.offset..range.offset + range.len],
            &record.slot_wire[..]
        );
        // Everything outside the slot is zero.
        for (i, &b) in clear.iter().enumerate() {
            if i < range.offset || i >= range.offset + range.len {
                assert_eq!(b, 0, "byte {i} should be zero");
            }
        }
    }

    #[test]
    fn request_bit_set_for_own_slot() {
        let mut rng = StdRng::seed_from_u64(3);
        let schedule = SlotSchedule::new(10, SlotConfig::default());
        let layout = schedule.layout();
        let client = ClientDcnet::new(6, secrets(1, 1));
        let (clear, _) = client.cleartext(&mut rng, &layout, &Submission::open_request());
        assert!(crate::pad::get_bit(&clear, 6));
        assert_eq!(clear.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
    }

    #[test]
    fn ciphertext_is_independent_of_other_clients() {
        // The same client produces the same ciphertext regardless of what
        // other clients do — the key churn-tolerance property.
        let mut rng1 = StdRng::seed_from_u64(4);
        let mut rng2 = StdRng::seed_from_u64(4);
        let schedule = SlotSchedule::new(5, SlotConfig::default());
        let layout = schedule.layout();
        let client = ClientDcnet::new(0, secrets(2, 5));
        let a = client.ciphertext(&mut rng1, &layout, &Submission::open_request());
        let b = client.ciphertext(&mut rng2, &layout, &Submission::open_request());
        assert_eq!(a.ciphertext, b.ciphertext);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn requires_at_least_one_server() {
        ClientDcnet::new(0, Vec::new());
    }
}
