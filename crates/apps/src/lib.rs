//! # dissent-apps
//!
//! Applications and workloads built on the Dissent protocol, mirroring §4
//! and §5.4 of the paper:
//!
//! * [`microblog`] — anonymous microblogging: the 1 %-of-clients-post
//!   workload, action generation for the in-memory session, and feed
//!   collection.
//! * [`socks`] — SOCKS-style flow framing: splitting TCP flows into
//!   slot-sized frames with destination headers and reassembling them at
//!   the exit node.
//! * [`web`] — the WiNoN browsing scenario: a synthetic Alexa-Top-100 page
//!   corpus, access-path models for direct / Tor / Dissent / Dissent+Tor,
//!   and the download-time model behind Figures 10 and 11.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod microblog;
pub mod socks;
pub mod web;

pub use microblog::{Feed, MicroblogWorkload, Post};
pub use socks::{split_flow, CompletedFlow, Frame, Reassembler};
pub use web::{alexa_like_corpus, AccessPath, BrowsingConfig, BrowsingModel, Page};
