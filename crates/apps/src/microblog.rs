//! Anonymous microblogging (paper §4.2).
//!
//! The paper's headline application: a chat-like interface where users post
//! short messages into the Dissent session.  The evaluation's microblog
//! workload has a random 1 % of clients submit 128-byte messages each round.
//! This module generates that workload as [`ClientAction`]s for the
//! in-memory [`Session`](dissent_core::Session) and collects the revealed
//! posts into a feed, so the examples and integration tests exercise the
//! same data path a real deployment would.

use dissent_core::session::{ClientAction, RoundResult};
use dissent_metrics::{Counter, Histogram, Registry};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Parameters of the microblog workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MicroblogWorkload {
    /// Probability that a given client posts in a given round.
    pub post_probability: f64,
    /// Size of each post in bytes.
    pub post_bytes: usize,
    /// Probability that a given client is offline in a given round.
    pub offline_probability: f64,
}

impl Default for MicroblogWorkload {
    fn default() -> Self {
        MicroblogWorkload {
            post_probability: 0.01,
            post_bytes: 128,
            offline_probability: 0.0,
        }
    }
}

impl MicroblogWorkload {
    /// Generate one round of client actions for `num_clients` clients.
    pub fn actions<R: Rng + ?Sized>(
        &self,
        num_clients: usize,
        round: u64,
        rng: &mut R,
    ) -> Vec<ClientAction> {
        (0..num_clients)
            .map(|client| {
                if rng.gen_bool(self.offline_probability.clamp(0.0, 1.0)) {
                    ClientAction::Offline
                } else if rng.gen_bool(self.post_probability.clamp(0.0, 1.0)) {
                    ClientAction::Send(self.compose(client, round))
                } else {
                    ClientAction::Idle
                }
            })
            .collect()
    }

    /// Compose a post of exactly `post_bytes` bytes.  The content encodes the
    /// author and round only so tests can check delivery; a real client would
    /// of course not identify itself.
    pub fn compose(&self, client: usize, round: u64) -> Vec<u8> {
        let mut text = format!("post r{round} c{client} ").into_bytes();
        while text.len() < self.post_bytes {
            text.push(b'.');
        }
        text.truncate(self.post_bytes);
        text
    }
}

/// Bucket bounds for post latency measured in protocol rounds.
pub const POST_LATENCY_ROUND_BUCKETS: &[u64] = &[1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64];

/// What a closed-loop client is doing right now.
enum LoopState {
    /// Reading the feed; will compose a new post at `until_round`.
    Thinking { until_round: u64 },
    /// Submitted `body` in round `since_round`; waiting to see it revealed.
    Posting {
        body: Vec<u8>,
        since_round: u64,
        submitted_at: Instant,
    },
}

/// Closed-loop think/post traffic generator (paper §4.2, §5.2).
///
/// Unlike [`MicroblogWorkload`], which posts open-loop with a fixed
/// per-round probability, every client here alternates between *thinking*
/// for a few rounds and *posting* one message, and does not compose the
/// next post until it has seen the previous one come back out of the
/// protocol.  That closes the loop the way a real user does, and it lets
/// the generator measure **client-observed post latency** — submit round
/// to reveal round, and submit instant to reveal instant — into the same
/// metric registry the node and sim paths export.
pub struct ClosedLoopMicroblog {
    post_bytes: usize,
    min_think_rounds: u64,
    max_think_rounds: u64,
    clients: Vec<LoopState>,
    posts_submitted: Counter,
    posts_delivered: Counter,
    latency_rounds: Histogram,
    latency_seconds: Histogram,
}

impl ClosedLoopMicroblog {
    /// A generator for `num_clients` clients whose think times are drawn
    /// uniformly from `min_think_rounds..=max_think_rounds`.  Instruments
    /// are detached until [`Self::bind_metrics`] is called.
    pub fn new<R: Rng + ?Sized>(
        num_clients: usize,
        post_bytes: usize,
        min_think_rounds: u64,
        max_think_rounds: u64,
        rng: &mut R,
    ) -> Self {
        let max_think_rounds = max_think_rounds.max(min_think_rounds);
        let clients = (0..num_clients)
            .map(|_| LoopState::Thinking {
                until_round: rng.gen_range(0..=max_think_rounds),
            })
            .collect();
        ClosedLoopMicroblog {
            post_bytes,
            min_think_rounds,
            max_think_rounds,
            clients,
            posts_submitted: Counter::detached(),
            posts_delivered: Counter::detached(),
            latency_rounds: Histogram::detached(POST_LATENCY_ROUND_BUCKETS, 1.0),
            latency_seconds: Histogram::detached_latency(),
        }
    }

    /// Re-register the generator's instruments on `registry` so the
    /// closed-loop latency lands next to the node and sim metrics.
    pub fn bind_metrics(&mut self, registry: &Registry) {
        self.posts_submitted = registry.counter(
            "dissent_microblog_posts_submitted_total",
            "Posts composed and handed to the protocol by closed-loop clients",
        );
        self.posts_delivered = registry.counter(
            "dissent_microblog_posts_delivered_total",
            "Posts observed back in a certified round output",
        );
        self.latency_rounds = registry.histogram(
            "dissent_microblog_post_latency_rounds",
            "Client-observed post latency, submit round to reveal round",
            POST_LATENCY_ROUND_BUCKETS,
            1.0,
        );
        self.latency_seconds = registry.latency_histogram(
            "dissent_microblog_post_latency_seconds",
            "Client-observed wall-clock post latency",
        );
    }

    /// Posts submitted but not yet seen in a round output.
    pub fn pending(&self) -> usize {
        self.clients
            .iter()
            .filter(|c| matches!(c, LoopState::Posting { .. }))
            .count()
    }

    /// Generate the actions for `round`.  Thinking clients whose timer has
    /// expired compose a post and move to the posting state.
    pub fn actions(&mut self, round: u64) -> Vec<ClientAction> {
        let post_bytes = self.post_bytes;
        let mut actions = Vec::with_capacity(self.clients.len());
        for (client, state) in self.clients.iter_mut().enumerate() {
            let action = match state {
                LoopState::Thinking { until_round } if *until_round <= round => {
                    let body = MicroblogWorkload {
                        post_bytes,
                        ..MicroblogWorkload::default()
                    }
                    .compose(client, round);
                    *state = LoopState::Posting {
                        body: body.clone(),
                        since_round: round,
                        submitted_at: Instant::now(),
                    };
                    self.posts_submitted.inc();
                    ClientAction::Send(body)
                }
                // Still thinking, or waiting for a post in flight: the
                // client shows up but has nothing new to say.
                _ => ClientAction::Idle,
            };
            actions.push(action);
        }
        actions
    }

    /// Ingest one round's output: any client whose in-flight post appears
    /// records its latency and goes back to thinking.
    pub fn observe<R: Rng + ?Sized>(&mut self, result: &RoundResult, rng: &mut R) {
        for (_, delivered) in &result.messages {
            for state in self.clients.iter_mut() {
                let LoopState::Posting {
                    body,
                    since_round,
                    submitted_at,
                } = state
                else {
                    continue;
                };
                if body != delivered {
                    continue;
                }
                // Latency counts both endpoints: a post submitted in round
                // r and revealed in round r is one round of waiting.
                self.latency_rounds
                    .observe(result.round.saturating_sub(*since_round) + 1);
                self.latency_seconds
                    .observe_duration(submitted_at.elapsed());
                self.posts_delivered.inc();
                let think = rng.gen_range(self.min_think_rounds..=self.max_think_rounds);
                *state = LoopState::Thinking {
                    until_round: result.round + 1 + think,
                };
                break;
            }
        }
    }
}

/// One post revealed by the protocol.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Post {
    /// The round the post appeared in.
    pub round: u64,
    /// The anonymous slot that carried it.
    pub slot: usize,
    /// The post body.
    pub body: Vec<u8>,
}

/// The collected feed of anonymous posts.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Feed {
    /// All posts in arrival order.
    pub posts: Vec<Post>,
}

impl Feed {
    /// Create an empty feed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest one round's output.
    pub fn ingest(&mut self, result: &RoundResult) {
        for (slot, body) in &result.messages {
            self.posts.push(Post {
                round: result.round,
                slot: *slot,
                body: body.clone(),
            });
        }
    }

    /// Number of posts collected so far.
    pub fn len(&self) -> usize {
        self.posts.len()
    }

    /// True if no posts have been collected.
    pub fn is_empty(&self) -> bool {
        self.posts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn posts_are_exactly_the_requested_size() {
        let w = MicroblogWorkload::default();
        assert_eq!(w.compose(3, 17).len(), 128);
        let small = MicroblogWorkload {
            post_bytes: 10,
            ..MicroblogWorkload::default()
        };
        assert_eq!(small.compose(123456, 999).len(), 10);
    }

    #[test]
    fn one_percent_of_clients_post_on_average() {
        let w = MicroblogWorkload::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut senders = 0usize;
        let rounds = 50;
        for r in 0..rounds {
            senders += w
                .actions(1000, r, &mut rng)
                .iter()
                .filter(|a| matches!(a, ClientAction::Send(_)))
                .count();
        }
        let avg = senders as f64 / rounds as f64;
        assert!(avg > 5.0 && avg < 15.0, "avg senders = {avg}");
    }

    #[test]
    fn offline_probability_produces_offline_actions() {
        let w = MicroblogWorkload {
            offline_probability: 0.5,
            ..MicroblogWorkload::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let actions = w.actions(2000, 0, &mut rng);
        let offline = actions
            .iter()
            .filter(|a| matches!(a, ClientAction::Offline))
            .count();
        assert!(offline > 800 && offline < 1200, "offline = {offline}");
    }

    #[test]
    fn closed_loop_measures_post_latency_through_a_real_session() {
        use dissent_core::GroupBuilder;
        use dissent_core::Session;

        let mut rng = StdRng::seed_from_u64(0xb10);
        let group = GroupBuilder::new(4, 2).with_shuffle_soundness(4).build();
        let mut session = Session::new(&group, &mut rng).unwrap();
        let registry = Registry::new();
        session.bind_metrics(&registry);

        // Short think times so every client cycles think → post → think
        // several times over the run.
        let mut app = ClosedLoopMicroblog::new(4, 32, 1, 3, &mut rng);
        app.bind_metrics(&registry);
        let mut feed = Feed::new();
        for round in 0..40u64 {
            let actions = app.actions(round);
            let result = session.run_round(&actions, &mut rng);
            assert!(result.certified, "round {round} must certify");
            app.observe(&result, &mut rng);
            feed.ingest(&result);
        }

        let submitted = registry
            .counter_value("dissent_microblog_posts_submitted_total", &[])
            .unwrap();
        let delivered = registry
            .counter_value("dissent_microblog_posts_delivered_total", &[])
            .unwrap();
        assert!(delivered > 0, "the loop must close at least once");
        assert!(submitted >= delivered);
        assert_eq!(submitted - delivered, app.pending() as u64);
        assert_eq!(feed.len() as u64, delivered);

        // Every delivered post observed a latency of at least one round,
        // and the latencies live in the shared registry.
        let hist = registry.histogram(
            "dissent_microblog_post_latency_rounds",
            "Client-observed post latency, submit round to reveal round",
            POST_LATENCY_ROUND_BUCKETS,
            1.0,
        );
        assert_eq!(hist.count(), delivered);
        // Each delivered post waited at least one round, so the recorded
        // sum is at least one per delivery.  (The p50 itself interpolates
        // inside the first bucket, so it is not a sharp bound.)
        assert!(hist.sum() >= delivered as f64);
        assert!(hist.quantile(0.5) > 0.0);
        let rendered = registry.render();
        assert!(rendered.contains("dissent_microblog_post_latency_rounds_bucket"));
        assert!(rendered.contains("dissent_microblog_post_latency_seconds_bucket"));
    }

    #[test]
    fn feed_collects_round_messages() {
        let mut feed = Feed::new();
        assert!(feed.is_empty());
        feed.ingest(&RoundResult {
            round: 4,
            messages: vec![(2, b"hi".to_vec()), (5, b"yo".to_vec())],
            participation: 10,
            required_participation: 9,
            corrupted_slots: vec![],
            expelled: vec![],
            certified: true,
            cleartext: vec![],
        });
        assert_eq!(feed.len(), 2);
        assert_eq!(feed.posts[0].slot, 2);
        assert_eq!(feed.posts[1].body, b"yo".to_vec());
    }
}
