//! Anonymous microblogging (paper §4.2).
//!
//! The paper's headline application: a chat-like interface where users post
//! short messages into the Dissent session.  The evaluation's microblog
//! workload has a random 1 % of clients submit 128-byte messages each round.
//! This module generates that workload as [`ClientAction`]s for the
//! in-memory [`Session`](dissent_core::Session) and collects the revealed
//! posts into a feed, so the examples and integration tests exercise the
//! same data path a real deployment would.

use dissent_core::session::{ClientAction, RoundResult};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the microblog workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MicroblogWorkload {
    /// Probability that a given client posts in a given round.
    pub post_probability: f64,
    /// Size of each post in bytes.
    pub post_bytes: usize,
    /// Probability that a given client is offline in a given round.
    pub offline_probability: f64,
}

impl Default for MicroblogWorkload {
    fn default() -> Self {
        MicroblogWorkload {
            post_probability: 0.01,
            post_bytes: 128,
            offline_probability: 0.0,
        }
    }
}

impl MicroblogWorkload {
    /// Generate one round of client actions for `num_clients` clients.
    pub fn actions<R: Rng + ?Sized>(
        &self,
        num_clients: usize,
        round: u64,
        rng: &mut R,
    ) -> Vec<ClientAction> {
        (0..num_clients)
            .map(|client| {
                if rng.gen_bool(self.offline_probability.clamp(0.0, 1.0)) {
                    ClientAction::Offline
                } else if rng.gen_bool(self.post_probability.clamp(0.0, 1.0)) {
                    ClientAction::Send(self.compose(client, round))
                } else {
                    ClientAction::Idle
                }
            })
            .collect()
    }

    /// Compose a post of exactly `post_bytes` bytes.  The content encodes the
    /// author and round only so tests can check delivery; a real client would
    /// of course not identify itself.
    pub fn compose(&self, client: usize, round: u64) -> Vec<u8> {
        let mut text = format!("post r{round} c{client} ").into_bytes();
        while text.len() < self.post_bytes {
            text.push(b'.');
        }
        text.truncate(self.post_bytes);
        text
    }
}

/// One post revealed by the protocol.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Post {
    /// The round the post appeared in.
    pub round: u64,
    /// The anonymous slot that carried it.
    pub slot: usize,
    /// The post body.
    pub body: Vec<u8>,
}

/// The collected feed of anonymous posts.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Feed {
    /// All posts in arrival order.
    pub posts: Vec<Post>,
}

impl Feed {
    /// Create an empty feed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest one round's output.
    pub fn ingest(&mut self, result: &RoundResult) {
        for (slot, body) in &result.messages {
            self.posts.push(Post {
                round: result.round,
                slot: *slot,
                body: body.clone(),
            });
        }
    }

    /// Number of posts collected so far.
    pub fn len(&self) -> usize {
        self.posts.len()
    }

    /// True if no posts have been collected.
    pub fn is_empty(&self) -> bool {
        self.posts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn posts_are_exactly_the_requested_size() {
        let w = MicroblogWorkload::default();
        assert_eq!(w.compose(3, 17).len(), 128);
        let small = MicroblogWorkload {
            post_bytes: 10,
            ..MicroblogWorkload::default()
        };
        assert_eq!(small.compose(123456, 999).len(), 10);
    }

    #[test]
    fn one_percent_of_clients_post_on_average() {
        let w = MicroblogWorkload::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut senders = 0usize;
        let rounds = 50;
        for r in 0..rounds {
            senders += w
                .actions(1000, r, &mut rng)
                .iter()
                .filter(|a| matches!(a, ClientAction::Send(_)))
                .count();
        }
        let avg = senders as f64 / rounds as f64;
        assert!(avg > 5.0 && avg < 15.0, "avg senders = {avg}");
    }

    #[test]
    fn offline_probability_produces_offline_actions() {
        let w = MicroblogWorkload {
            offline_probability: 0.5,
            ..MicroblogWorkload::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let actions = w.actions(2000, 0, &mut rng);
        let offline = actions
            .iter()
            .filter(|a| matches!(a, ClientAction::Offline))
            .count();
        assert!(offline > 800 && offline < 1200, "offline = {offline}");
    }

    #[test]
    fn feed_collects_round_messages() {
        let mut feed = Feed::new();
        assert!(feed.is_empty());
        feed.ingest(&RoundResult {
            round: 4,
            messages: vec![(2, b"hi".to_vec()), (5, b"yo".to_vec())],
            participation: 10,
            required_participation: 9,
            corrupted_slots: vec![],
            expelled: vec![],
            certified: true,
            cleartext: vec![],
        });
        assert_eq!(feed.len(), 2);
        assert_eq!(feed.posts[0].slot, 2);
        assert_eq!(feed.posts[1].body, b"yo".to_vec());
    }
}
