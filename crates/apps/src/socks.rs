//! SOCKS-style flow tunnelling (paper §4.1).
//!
//! The prototype exposes a SOCKS v5 proxy: an entry node accepts TCP/UDP
//! flows from applications, tags each with a random flow identifier plus the
//! destination address, and streams the bytes through the Dissent session;
//! a (non-anonymous) exit node reassembles the flows and forwards them to
//! the public Internet.  This module implements that framing layer: flows
//! are split into self-describing frames that fit in DC-net slot payloads
//! and are reassembled in order on the far side.

use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of one tunnelled flow (random, so the exit cannot correlate
/// flows beyond what it must deliver).
pub type FlowId = u32;

/// One frame of a tunnelled flow.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// The flow this frame belongs to.
    pub flow: FlowId,
    /// Sequence number within the flow.
    pub seq: u32,
    /// Destination host (carried on every frame so the exit is stateless
    /// across Dissent rounds).
    pub dest_host: String,
    /// Destination port.
    pub dest_port: u16,
    /// Whether this is the final frame of the flow.
    pub fin: bool,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Serialize to the wire form carried inside a slot payload.
    pub fn encode(&self) -> Vec<u8> {
        let host = self.dest_host.as_bytes();
        assert!(host.len() <= u8::MAX as usize, "hostname too long");
        let mut buf = BytesMut::with_capacity(16 + host.len() + self.payload.len());
        buf.put_u32(self.flow);
        buf.put_u32(self.seq);
        buf.put_u8(self.fin as u8);
        buf.put_u8(host.len() as u8);
        buf.put_slice(host);
        buf.put_u16(self.dest_port);
        buf.put_u32(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        buf.to_vec()
    }

    /// Parse a frame from its wire form.
    pub fn decode(mut data: &[u8]) -> Option<Frame> {
        if data.len() < 14 {
            return None;
        }
        let flow = data.get_u32();
        let seq = data.get_u32();
        let fin = data.get_u8() != 0;
        let host_len = data.get_u8() as usize;
        if data.len() < host_len + 6 {
            return None;
        }
        let dest_host = String::from_utf8(data[..host_len].to_vec()).ok()?;
        data.advance(host_len);
        let dest_port = data.get_u16();
        let payload_len = data.get_u32() as usize;
        if data.len() < payload_len {
            return None;
        }
        Some(Frame {
            flow,
            seq,
            dest_host,
            dest_port,
            fin,
            payload: data[..payload_len].to_vec(),
        })
    }

    /// Framing overhead (everything except the payload) for a hostname.
    pub fn overhead(dest_host: &str) -> usize {
        16 + dest_host.len()
    }
}

/// Split an application byte stream into frames whose encoded size fits in
/// `max_frame_bytes`.
pub fn split_flow(
    flow: FlowId,
    dest_host: &str,
    dest_port: u16,
    data: &[u8],
    max_frame_bytes: usize,
) -> Vec<Frame> {
    let overhead = Frame::overhead(dest_host);
    let chunk = max_frame_bytes.saturating_sub(overhead).max(1);
    let chunks: Vec<&[u8]> = if data.is_empty() {
        vec![&[][..]]
    } else {
        data.chunks(chunk).collect()
    };
    let n = chunks.len();
    chunks
        .into_iter()
        .enumerate()
        .map(|(i, payload)| Frame {
            flow,
            seq: i as u32,
            dest_host: dest_host.to_string(),
            dest_port,
            fin: i + 1 == n,
            payload: payload.to_vec(),
        })
        .collect()
}

/// Exit-node reassembler: collects frames (possibly out of order, possibly
/// interleaved across flows) and yields complete flows.
#[derive(Debug, Default)]
pub struct Reassembler {
    flows: BTreeMap<FlowId, BTreeMap<u32, Frame>>,
}

/// A fully reassembled flow ready to be forwarded to its destination.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompletedFlow {
    /// The flow identifier.
    pub flow: FlowId,
    /// Destination host.
    pub dest_host: String,
    /// Destination port.
    pub dest_port: u16,
    /// The reassembled byte stream.
    pub data: Vec<u8>,
}

impl Reassembler {
    /// Create an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest one frame; returns the completed flow if this frame finished it.
    pub fn ingest(&mut self, frame: Frame) -> Option<CompletedFlow> {
        let entry = self.flows.entry(frame.flow).or_default();
        entry.insert(frame.seq, frame);
        self.try_complete_latest()
    }

    fn try_complete_latest(&mut self) -> Option<CompletedFlow> {
        let completed_flow = self.flows.iter().find_map(|(&flow, frames)| {
            let fin = frames.values().find(|f| f.fin)?;
            let expected = fin.seq + 1;
            let contiguous = (0..expected).all(|s| frames.contains_key(&s));
            contiguous.then_some(flow)
        })?;
        let frames = self.flows.remove(&completed_flow)?;
        let first = frames.values().next()?;
        let dest_host = first.dest_host.clone();
        let dest_port = first.dest_port;
        let mut data = Vec::new();
        for (_, f) in frames {
            data.extend_from_slice(&f.payload);
        }
        Some(CompletedFlow {
            flow: completed_flow,
            dest_host,
            dest_port,
            data,
        })
    }

    /// Number of flows still awaiting frames.
    pub fn pending(&self) -> usize {
        self.flows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_encode_decode_round_trip() {
        let f = Frame {
            flow: 0xdead_beef,
            seq: 7,
            dest_host: "example.org".to_string(),
            dest_port: 443,
            fin: true,
            payload: b"GET / HTTP/1.1\r\n\r\n".to_vec(),
        };
        let decoded = Frame::decode(&f.encode()).unwrap();
        assert_eq!(decoded, f);
        assert!(Frame::decode(&f.encode()[..5]).is_none());
        assert!(Frame::decode(&[]).is_none());
    }

    #[test]
    fn split_and_reassemble_round_trip() {
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_be_bytes()).collect();
        let frames = split_flow(42, "example.com", 80, &data, 512);
        assert!(frames.len() > 1);
        assert!(frames.iter().all(|f| f.encode().len() <= 512));
        assert!(frames.last().unwrap().fin);
        let mut r = Reassembler::new();
        let mut completed = None;
        for f in frames {
            completed = r.ingest(f).or(completed);
        }
        let flow = completed.expect("flow should complete");
        assert_eq!(flow.data, data);
        assert_eq!(flow.dest_host, "example.com");
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn out_of_order_frames_reassemble() {
        let data = vec![7u8; 3000];
        let mut frames = split_flow(1, "host", 8080, &data, 300);
        frames.reverse();
        let mut r = Reassembler::new();
        let mut completed = None;
        for f in frames {
            completed = r.ingest(f).or(completed);
        }
        assert_eq!(completed.unwrap().data, data);
    }

    #[test]
    fn interleaved_flows_do_not_mix() {
        let a = split_flow(1, "a.example", 80, &vec![1u8; 900], 256);
        let b = split_flow(2, "b.example", 80, &vec![2u8; 900], 256);
        let mut r = Reassembler::new();
        let mut done = Vec::new();
        for (fa, fb) in a.into_iter().zip(b) {
            if let Some(c) = r.ingest(fa) {
                done.push(c);
            }
            if let Some(c) = r.ingest(fb) {
                done.push(c);
            }
        }
        assert_eq!(done.len(), 2);
        assert!(done
            .iter()
            .any(|c| c.dest_host == "a.example" && c.data == vec![1u8; 900]));
        assert!(done
            .iter()
            .any(|c| c.dest_host == "b.example" && c.data == vec![2u8; 900]));
    }

    #[test]
    fn empty_flow_still_produces_a_fin_frame() {
        let frames = split_flow(9, "x", 1, &[], 128);
        assert_eq!(frames.len(), 1);
        assert!(frames[0].fin);
        assert!(frames[0].payload.is_empty());
    }
}
