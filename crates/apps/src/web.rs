//! Anonymous web browsing (paper §4.3, §5.4 — Figures 10 and 11).
//!
//! The paper measures how long downloading the Alexa Top-100 index pages
//! takes under four configurations: direct access, Tor, a local-area Dissent
//! deployment (the WiNoN scenario), and Dissent composed with Tor.  Neither
//! the 2012 Alexa pages nor the live Tor network are available here, so this
//! module provides:
//!
//! * a synthetic **page corpus** with realistic size/asset distributions
//!   (median page ≈ 1 MB across a few dozen assets);
//! * an **access-path model** for each configuration, expressed as a
//!   per-request latency plus an effective throughput — the Dissent paths
//!   derive both from the round-timing simulator so they respond to the
//!   topology and workload parameters rather than being hard-coded;
//! * a **download-time model**: fetch the HTML, then fetch assets with
//!   bounded concurrency, exactly like the paper's automated browser.

use dissent_core::timing::{simulate_rounds, Scenario, Workload};
use dissent_core::WindowPolicy;
use dissent_net::churn::ChurnModel;
use dissent_net::costmodel::CostModel;
use dissent_net::sim::{to_secs, SimTime, SECOND};
use dissent_net::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One synthetic web page.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Page {
    /// Rank in the corpus (1-based, mirroring "Alexa Top-100").
    pub rank: usize,
    /// Size of the HTML document in bytes.
    pub html_bytes: usize,
    /// Sizes of the dependent assets (images, CSS, JS, …).
    pub assets: Vec<usize>,
}

impl Page {
    /// Total bytes transferred for the page.
    pub fn total_bytes(&self) -> usize {
        self.html_bytes + self.assets.iter().sum::<usize>()
    }

    /// Total number of HTTP requests (HTML + assets).
    pub fn requests(&self) -> usize {
        1 + self.assets.len()
    }
}

/// Generate a synthetic "Alexa Top-100"-like corpus.
///
/// Page sizes are log-normally distributed with a median around 1 MB and
/// 20–60 assets per page, matching the aggregate statistics the paper's
/// averages imply ("downloading 1 MB of Web content…").
pub fn alexa_like_corpus(count: usize, seed: u64) -> Vec<Page> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let html_bytes = rng.gen_range(20_000..150_000);
            let num_assets = rng.gen_range(15..60);
            // Log-normal-ish asset sizes: many small, a few large.
            let assets: Vec<usize> = (0..num_assets)
                .map(|_| {
                    let z: f64 = rng.gen_range(0.0..1.0);
                    (2_000.0 * (1.0 / (1.0 - z * 0.98)).powf(1.3)) as usize
                })
                .collect();
            Page {
                rank: i + 1,
                html_bytes,
                assets,
            }
        })
        .collect()
}

/// An access path: fixed per-request latency plus effective throughput.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AccessPath {
    /// Per-request round-trip latency.
    pub request_latency: SimTime,
    /// Effective sustained throughput in bits per second.
    pub throughput_bps: f64,
    /// Maximum concurrent requests (the automated browser fetched dependent
    /// assets concurrently).
    pub concurrency: usize,
}

impl AccessPath {
    /// Time to download one page over this path.
    pub fn download_time(&self, page: &Page) -> SimTime {
        let request_batches =
            (page.requests() as f64 / self.concurrency.max(1) as f64).ceil() as SimTime;
        let latency = self.request_latency * request_batches;
        let transfer =
            ((page.total_bytes() as f64 * 8.0 / self.throughput_bps) * SECOND as f64) as SimTime;
        latency + transfer
    }
}

/// The four configurations of Figure 10.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BrowsingConfig {
    /// The gateway connects directly to the Internet.
    Direct,
    /// Through the public Tor network (3-hop circuits).
    Tor,
    /// Through a local-area Dissent group (the WiNoN deployment).
    DissentLan,
    /// Local-area Dissent composed with Tor ("best of both worlds").
    DissentPlusTor,
}

impl BrowsingConfig {
    /// All four configurations in the paper's presentation order.
    pub fn all() -> [BrowsingConfig; 4] {
        [
            BrowsingConfig::Direct,
            BrowsingConfig::Tor,
            BrowsingConfig::DissentLan,
            BrowsingConfig::DissentPlusTor,
        ]
    }

    /// Human-readable label (matches the figure legend).
    pub fn label(&self) -> &'static str {
        match self {
            BrowsingConfig::Direct => "no anonymity",
            BrowsingConfig::Tor => "Tor",
            BrowsingConfig::DissentLan => "Dissent (wLAN)",
            BrowsingConfig::DissentPlusTor => "Dissent + Tor",
        }
    }
}

/// Model of the §5.4 testbed: a 24 Mbps / 10 ms WiFi LAN of 24 clients and
/// 5 servers, one of which gateways to the Internet, plus a 2012-era Tor
/// path model.
#[derive(Clone, Debug)]
pub struct BrowsingModel {
    /// The Emulab-style WiFi topology.
    pub topology: Topology,
    /// Effective throughput of a 2012-era Tor circuit (bits per second).
    pub tor_throughput_bps: f64,
    /// One-way latency added per Tor hop.
    pub tor_hop_latency: SimTime,
    /// Number of Tor relay hops.
    pub tor_hops: usize,
    /// Direct-path throughput of the gateway's Internet uplink.
    pub direct_throughput_bps: f64,
    /// Direct-path request latency.
    pub direct_latency: SimTime,
    /// Browser request concurrency.
    pub concurrency: usize,
    /// Bytes of tunnelled payload carried per Dissent round for the
    /// browsing flow.
    pub dissent_bytes_per_round: usize,
}

impl Default for BrowsingModel {
    fn default() -> Self {
        BrowsingModel {
            topology: Topology::emulab_wifi(24, 5),
            // Measured Tor circuit throughput in the 2011–2012 era was a few
            // hundred kbit/s; 300 kbit/s reproduces the ~4× slowdown of Fig 10.
            tor_throughput_bps: 300_000.0,
            tor_hop_latency: 80 * dissent_net::MILLISECOND,
            tor_hops: 3,
            direct_throughput_bps: 1_000_000.0,
            direct_latency: 120 * dissent_net::MILLISECOND,
            concurrency: 6,
            dissent_bytes_per_round: 16 * 1024,
        }
    }
}

impl BrowsingModel {
    /// The mean Dissent round time on the WiFi LAN, obtained from the
    /// round-timing simulator with a bulk-ish per-round payload.
    pub fn dissent_round_time(&self) -> SimTime {
        let scenario = Scenario {
            topology: self.topology.clone(),
            cost: CostModel::default(),
            churn: ChurnModel::reliable_lan(),
            policy: WindowPolicy::default(),
            workload: Workload::Bulk {
                message_bytes: self.dissent_bytes_per_round,
            },
            oversubscription: 1.0,
            seed: 0x3e8,
        };
        let rounds = simulate_rounds(&scenario, 20);
        let mean = rounds.iter().map(|r| r.total() as f64).sum::<f64>() / rounds.len() as f64;
        mean as SimTime
    }

    /// The access path for one configuration.
    pub fn path(&self, config: BrowsingConfig) -> AccessPath {
        let round = self.dissent_round_time() as f64;
        let dissent_throughput =
            self.dissent_bytes_per_round as f64 * 8.0 / (round / SECOND as f64);
        let tor_latency = self.tor_hop_latency * 2 * self.tor_hops as SimTime;
        match config {
            BrowsingConfig::Direct => AccessPath {
                request_latency: self.direct_latency,
                throughput_bps: self.direct_throughput_bps,
                concurrency: self.concurrency,
            },
            BrowsingConfig::Tor => AccessPath {
                request_latency: self.direct_latency + tor_latency,
                throughput_bps: self.tor_throughput_bps,
                concurrency: self.concurrency,
            },
            BrowsingConfig::DissentLan => AccessPath {
                // A request waits for the next round in each direction.
                request_latency: self.direct_latency + 2 * round as SimTime,
                throughput_bps: dissent_throughput,
                concurrency: self.concurrency,
            },
            BrowsingConfig::DissentPlusTor => AccessPath {
                request_latency: self.direct_latency + tor_latency + 2 * round as SimTime,
                // Serial composition: the slower stage bottlenecks and the
                // extra hop costs a further efficiency factor.
                throughput_bps: dissent_throughput.min(self.tor_throughput_bps) * 0.8,
                concurrency: self.concurrency,
            },
        }
    }

    /// Download every page of a corpus under one configuration; returns
    /// per-page times in seconds.
    pub fn download_corpus(&self, config: BrowsingConfig, corpus: &[Page]) -> Vec<f64> {
        let path = self.path(config);
        corpus
            .iter()
            .map(|p| to_secs(path.download_time(p)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_realistic_shape() {
        let corpus = alexa_like_corpus(100, 1);
        assert_eq!(corpus.len(), 100);
        let mut totals: Vec<usize> = corpus.iter().map(|p| p.total_bytes()).collect();
        totals.sort_unstable();
        let median = totals[50];
        assert!(median > 200_000 && median < 4_000_000, "median = {median}");
        assert!(corpus.iter().all(|p| p.requests() >= 16));
        // Deterministic for a seed.
        assert_eq!(alexa_like_corpus(100, 1), corpus);
        assert_ne!(alexa_like_corpus(100, 2), corpus);
    }

    #[test]
    fn figure_10_ordering_holds() {
        // Direct < Tor < Dissent < Dissent+Tor in mean download time.
        let model = BrowsingModel::default();
        let corpus = alexa_like_corpus(100, 7);
        let mean = |cfg| {
            let times = model.download_corpus(cfg, &corpus);
            times.iter().sum::<f64>() / times.len() as f64
        };
        let direct = mean(BrowsingConfig::Direct);
        let tor = mean(BrowsingConfig::Tor);
        let dissent = mean(BrowsingConfig::DissentLan);
        let both = mean(BrowsingConfig::DissentPlusTor);
        assert!(direct < tor, "direct {direct} vs tor {tor}");
        assert!(tor < dissent, "tor {tor} vs dissent {dissent}");
        assert!(dissent < both, "dissent {dissent} vs both {both}");
        // The paper reports roughly 10 / 40 / 45 / 55 seconds per ~1 MB page:
        // anonymised paths are several times slower than direct, and
        // Dissent+Tor costs tens of percent over Tor alone, not multiples.
        assert!(tor / direct > 2.0 && tor / direct < 10.0);
        assert!(both / tor < 2.5);
    }

    #[test]
    fn dissent_round_time_is_sub_second_on_the_lan() {
        let model = BrowsingModel::default();
        let round = to_secs(model.dissent_round_time());
        assert!(round > 0.05 && round < 2.0, "round = {round}");
    }

    #[test]
    fn download_time_scales_with_page_size() {
        let model = BrowsingModel::default();
        let path = model.path(BrowsingConfig::Tor);
        let small = Page {
            rank: 1,
            html_bytes: 10_000,
            assets: vec![10_000; 5],
        };
        let large = Page {
            rank: 2,
            html_bytes: 100_000,
            assets: vec![100_000; 30],
        };
        assert!(path.download_time(&large) > path.download_time(&small) * 5);
    }

    #[test]
    fn config_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            BrowsingConfig::all().iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
