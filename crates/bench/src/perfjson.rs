//! Machine-readable perf trajectory: `experiments -- bench` emits
//! `BENCH_<pr>.json`.
//!
//! Criterion logs are great for humans and useless for trend lines, so the
//! bench runner also measures the handful of numbers this repo's perf work
//! actually moves — pad keystream/XOR throughput per dispatched backend,
//! batched-vs-unbatched shuffle proving, batch verification, and real
//! protocol rounds per second — and writes them as one JSON document with a
//! stable schema (`dissent-bench/v1`).  CI uploads the file as a build
//! artifact; the repo keeps the latest run checked in at the root next to a
//! `history` array carrying the headline numbers of earlier PRs, so the
//! trajectory is diffable in review rather than buried in log output.
//!
//! # Schema (`dissent-bench/v1`)
//!
//! ```json
//! {
//!   "schema": "dissent-bench/v1",
//!   "pr": 6,
//!   "threads": 1,
//!   "pad": [
//!     {"wide4": "avx512", "wide8": "avx512",
//!      "sizes": [{"bytes": 4096,
//!                 "fill_mib_s": 0.0,
//!                 "apply_fused_mib_s": 0.0,
//!                 "apply_twopass_mib_s": 0.0,
//!                 "pad_xor_fused_mib_s": 0.0,
//!                 "pad_xor_twopass_mib_s": 0.0}]}
//!   ],
//!   "shuffle": [{"entries": 64, "soundness": 8,
//!                "prove_batched_ms": 0.0, "prove_unbatched_ms": 0.0,
//!                "verify_ms": 0.0}],
//!   "session": {"clients": 16, "window": 4, "rounds_per_sec": 0.0},
//!   "parallel": {"threads": 1, "secrets": 32, "bytes": 131072,
//!                "accumulate_serial_ms": 0.0, "accumulate_pool_ms": 0.0,
//!                "speedup": 1.0},
//!   "shards": {"scaling": [{"clients": 320, "group_size": 320, "shards": 1,
//!                           "rounds_per_group": 12, "rounds_per_sec": 0.0,
//!                           "federated_msgs_per_sec": 0.0, "p50_s": 0.0,
//!                           "p99_s": 0.0, "anonymity_set": 0.0}],
//!              "frontier": [{"clients": 100000, "group_size": 100,
//!                            "shards": 1000, "...": "same fields"}]},
//!   "history": [{"pr": 4, "...": "headline numbers of that PR"}]
//! }
//! ```
//!
//! * `pad` — one object per reachable ChaCha20 backend (the parent
//!   re-executes itself with `DISSENT_CHACHA_FORCE_SCALAR` /
//!   `DISSENT_CHACHA_FORCE_BACKEND` per candidate, because the dispatch is
//!   latched process-wide).  `fill` is keystream generation,
//!   `apply_fused` the in-place XOR path through the 8-block fused
//!   kernels, `apply_twopass` the PR-4-era fill-then-XOR baseline, and the
//!   `pad_xor_*` pair the same comparison through the DC-net
//!   `pad`/`pad_xor_into` entry points (which add HKDF seeding per call).
//! * `shuffle` — wall time of one full `perform_pass` with the batched
//!   DLEQ prover vs the per-entry reference, plus `verify_pass`.
//! * `session` — steady-state rounds/sec through the real pipelined round
//!   engine (idle DC-net rounds, testing group).
//! * `parallel` — measured pad-accumulation speedup on the current pool;
//!   the `RAYON_NUM_THREADS=4` CI lane records the multi-core number.
//! * `shards` — the federated-sharding study (virtual time, so the numbers
//!   are deterministic): `scaling` holds the 1→16-shard series at fixed
//!   group size whose aggregate rounds/sec must stay ≥ 0.8× linear, and
//!   `frontier` sweeps 10^4–10^6 total clients × group size, reporting
//!   aggregate throughput, pooled p50/p99 round latency, and the effective
//!   per-group anonymity-set size.  `experiments -- shards` emits the same
//!   section as a standalone document.

use std::time::Instant;

use dissent_core::{ClientAction, GroupBuilder, PerEntityRng, PipelinedSession, Session};
use dissent_crypto::chacha::{wide8_backend_name, wide_backend_name, ChaCha20};
use dissent_crypto::dh::DhKeyPair;
use dissent_crypto::elgamal::{Ciphertext, ElGamal};
use dissent_crypto::group::{Element, Group};
use dissent_crypto::xor::xor_into;
use dissent_dcnet::pad::{accumulate_pads_sharded, pad, pad_xor_into, SharedSecret};
use dissent_shuffle::{perform_pass, perform_pass_unbatched, verify_pass};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Schema identifier stamped into every document.
pub const SCHEMA: &str = "dissent-bench/v1";

/// The PR this runner reports for (also names the output file).
pub const PR: u32 = 10;

/// Time `f`, returning seconds per iteration: one warm-up call, then as
/// many timed iterations as fit in `min_secs` (at least three).
fn secs_per_iter<F: FnMut()>(min_secs: f64, mut f: F) -> f64 {
    f();
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if iters >= 3 && elapsed >= min_secs {
            return elapsed / iters as f64;
        }
    }
}

fn mib_per_sec(bytes: usize, secs: f64) -> f64 {
    (bytes as f64) / secs / (1024.0 * 1024.0)
}

/// Buffer sizes the pad probe measures: one small round (4 KiB) and the
/// paper-scale 128 KiB cleartext.
const PAD_SIZES: [usize; 2] = [4096, 131072];

/// Measure pad/keystream throughput for the backend dispatched in *this*
/// process and return it as one JSON object (a `pad` array element).
///
/// The ChaCha20 backend is latched process-wide on first use, so the
/// parent sweeps backends by re-executing itself with the force overrides
/// set and collecting this function's output line (subcommand
/// `bench-pad`).
pub fn pad_probe_json() -> String {
    let key = [7u8; 32];
    let nonce = [3u8; 12];
    let secret: SharedSecret = [42u8; 32];
    let mut sizes = Vec::new();
    for &len in &PAD_SIZES {
        let mut buf = vec![0u8; len];
        let mut tmp = vec![0u8; len];

        // Raw keystream generation through the wide kernels.
        let fill = secs_per_iter(0.15, || {
            let mut st = ChaCha20::new(&key, &nonce);
            st.fill(&mut buf);
        });
        // Fused in-place XOR: keystream blocks XORed straight into the
        // data by the 8-block kernels' store stage.
        let fused = secs_per_iter(0.15, || {
            let mut st = ChaCha20::new(&key, &nonce);
            st.apply(&mut buf);
        });
        // The PR-4 shape: generate the keystream into a scratch buffer,
        // then a separate word-level XOR pass over the data.
        let twopass = secs_per_iter(0.15, || {
            let mut st = ChaCha20::new(&key, &nonce);
            st.fill(&mut tmp);
            xor_into(&mut buf, &tmp);
        });
        // Same comparison at the DC-net entry points (adds HKDF seeding).
        let pad_fused = secs_per_iter(0.15, || {
            pad_xor_into(&secret, 9, &mut buf);
        });
        let pad_twopass = secs_per_iter(0.15, || {
            let p = pad(&secret, 9, len);
            xor_into(&mut buf, &p);
        });

        sizes.push(format!(
            concat!(
                "{{\"bytes\":{},\"fill_mib_s\":{:.1},\"apply_fused_mib_s\":{:.1},",
                "\"apply_twopass_mib_s\":{:.1},\"pad_xor_fused_mib_s\":{:.1},",
                "\"pad_xor_twopass_mib_s\":{:.1}}}"
            ),
            len,
            mib_per_sec(len, fill),
            mib_per_sec(len, fused),
            mib_per_sec(len, twopass),
            mib_per_sec(len, pad_fused),
            mib_per_sec(len, pad_twopass),
        ));
    }
    format!(
        "{{\"wide4\":\"{}\",\"wide8\":\"{}\",\"sizes\":[{}]}}",
        wide_backend_name(),
        wide8_backend_name(),
        sizes.join(",")
    )
}

/// The backends worth probing on this machine, as (label, env var, value)
/// triples for the child process.
fn backend_candidates() -> Vec<(&'static str, &'static str, &'static str)> {
    let mut out = vec![
        ("scalar", "DISSENT_CHACHA_FORCE_SCALAR", "1"),
        ("portable", "DISSENT_CHACHA_FORCE_BACKEND", "portable"),
    ];
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("sse2") {
            out.push(("sse2", "DISSENT_CHACHA_FORCE_BACKEND", "sse2"));
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            out.push(("avx2", "DISSENT_CHACHA_FORCE_BACKEND", "avx2"));
        }
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx2")
        {
            out.push(("avx512", "DISSENT_CHACHA_FORCE_BACKEND", "avx512"));
        }
    }
    out
}

/// Sweep every reachable backend by re-executing the current binary with
/// the force override set, collecting one `pad` object per backend.
fn pad_backend_sweep() -> Vec<String> {
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(_) => return vec![pad_probe_json()],
    };
    let mut out = Vec::new();
    for (label, var, value) in backend_candidates() {
        let result = std::process::Command::new(&exe)
            .arg("bench-pad")
            .env_remove("DISSENT_CHACHA_FORCE_SCALAR")
            .env_remove("DISSENT_CHACHA_FORCE_BACKEND")
            .env(var, value)
            .output();
        match result {
            Ok(output) if output.status.success() => {
                let stdout = String::from_utf8_lossy(&output.stdout);
                if let Some(line) = stdout.lines().find(|l| l.starts_with('{')) {
                    out.push(line.trim().to_string());
                } else {
                    eprintln!("bench: no pad probe output for backend {label}");
                }
            }
            _ => eprintln!("bench: pad probe subprocess failed for backend {label}"),
        }
    }
    if out.is_empty() {
        out.push(pad_probe_json());
    }
    out
}

/// Shuffle batch sizes the prover comparison covers.
const SHUFFLE_SIZES: [usize; 3] = [16, 64, 256];

/// Shadow rounds for the prover benchmark — the PR-4 `shuffle_prove`
/// criterion group used 8, so the trajectory stays comparable.
const SHUFFLE_SOUNDNESS: usize = 8;

fn shuffle_section() -> String {
    let group = Group::testing_256();
    let elgamal = ElGamal::new(group.clone());
    let mut rng = StdRng::seed_from_u64(0xBE6C);
    let servers: Vec<DhKeyPair> = (0..2)
        .map(|_| DhKeyPair::generate(&group, &mut rng))
        .collect();
    let server_keys: Vec<Element> = servers.iter().map(|s| s.public().clone()).collect();
    let combined = elgamal.combine_keys(&server_keys);
    let context = b"bench-perf-trajectory";

    let mut points = Vec::new();
    for &n in &SHUFFLE_SIZES {
        let input: Vec<Ciphertext> = (0..n)
            .map(|_| {
                let m = group.exp_base(&group.random_scalar(&mut rng));
                elgamal.encrypt(&mut rng, &combined, &m)
            })
            .collect();
        let batched = secs_per_iter(0.3, || {
            let mut r = StdRng::seed_from_u64(1);
            let t = perform_pass(
                &elgamal,
                &server_keys,
                0,
                &servers[0],
                &input,
                SHUFFLE_SOUNDNESS,
                context,
                &mut r,
            );
            std::hint::black_box(t);
        });
        let unbatched = secs_per_iter(0.3, || {
            let mut r = StdRng::seed_from_u64(1);
            let t = perform_pass_unbatched(
                &elgamal,
                &server_keys,
                0,
                &servers[0],
                &input,
                SHUFFLE_SOUNDNESS,
                context,
                &mut r,
            );
            std::hint::black_box(t);
        });
        let mut r = StdRng::seed_from_u64(1);
        let transcript = perform_pass(
            &elgamal,
            &server_keys,
            0,
            &servers[0],
            &input,
            SHUFFLE_SOUNDNESS,
            context,
            &mut r,
        );
        let verify = secs_per_iter(0.3, || {
            verify_pass(&elgamal, &server_keys, &input, &transcript, context)
                .expect("bench transcript verifies");
        });
        points.push(format!(
            concat!(
                "{{\"entries\":{},\"soundness\":{},\"prove_batched_ms\":{:.2},",
                "\"prove_unbatched_ms\":{:.2},\"verify_ms\":{:.2}}}"
            ),
            n,
            SHUFFLE_SOUNDNESS,
            batched * 1e3,
            unbatched * 1e3,
            verify * 1e3,
        ));
    }
    format!("[{}]", points.join(","))
}

fn session_section() -> String {
    let clients = 16;
    let window = 4;
    let mut rng = StdRng::seed_from_u64(5);
    let group = GroupBuilder::new(clients, 2)
        .with_shuffle_soundness(2)
        .build();
    let session = Session::new(&group, &mut rng).expect("session");
    let mut pipe = PipelinedSession::new(session, window).expect("window");
    let mut rngs = PerEntityRng::new(1, clients, 2);
    let batch: Vec<Vec<ClientAction>> = (0..window)
        .map(|_| vec![ClientAction::Idle; clients])
        .collect();
    let per_batch = secs_per_iter(1.0, || {
        let results = pipe.run_batch(&batch, &mut rngs);
        assert_eq!(results.len(), window, "pipelined batch completed");
    });
    format!(
        "{{\"clients\":{},\"window\":{},\"rounds_per_sec\":{:.2}}}",
        clients,
        window,
        window as f64 / per_batch
    )
}

fn parallel_section() -> String {
    let threads = rayon::current_num_threads();
    let secrets: Vec<SharedSecret> = (0..32u8).map(|i| [i; 32]).collect();
    let len = 131072;
    let mut acc = vec![0u8; len];
    let serial = secs_per_iter(0.3, || {
        accumulate_pads_sharded(&mut acc, &secrets, 11, 1);
    });
    let pool = secs_per_iter(0.3, || {
        accumulate_pads_sharded(&mut acc, &secrets, 11, threads);
    });
    format!(
        concat!(
            "{{\"threads\":{},\"secrets\":{},\"bytes\":{},",
            "\"accumulate_serial_ms\":{:.2},\"accumulate_pool_ms\":{:.2},",
            "\"speedup\":{:.2}}}"
        ),
        threads,
        secrets.len(),
        len,
        serial * 1e3,
        pool * 1e3,
        serial / pool,
    )
}

/// Render one [`ShardPoint`] as a JSON object.
fn shard_point_json(p: &crate::ShardPoint) -> String {
    format!(
        concat!(
            "{{\"clients\":{},\"group_size\":{},\"shards\":{},",
            "\"rounds_per_group\":{},\"rounds_per_sec\":{:.2},",
            "\"federated_msgs_per_sec\":{:.0},\"p50_s\":{:.2},\"p99_s\":{:.2},",
            "\"anonymity_set\":{:.1}}}"
        ),
        p.clients_total,
        p.group_size,
        p.shards,
        p.rounds_per_group,
        p.rounds_per_sec,
        p.messages_per_sec,
        p.p50_latency_s,
        p.p99_latency_s,
        p.anonymity_set,
    )
}

/// The federated-sharding study: the 1→16-shard scaling series at fixed
/// group size plus the 10^4–10^6-client frontier.  `quick` is the CI smoke
/// shape — 10^4 clients, at most 8 groups.
fn shards_section(quick: bool) -> String {
    let scaling = if quick {
        eprintln!("shards: scaling series (quick: 1..8 shards of 100)...");
        crate::shard_scaling(100, 8, 8)
    } else {
        eprintln!("shards: scaling series (1..16 shards of 320)...");
        crate::shard_scaling(320, 16, 12)
    };
    let frontier = if quick {
        eprintln!("shards: frontier (quick: 10^4 clients, 8 groups)...");
        vec![crate::shard_point(1250, 8, 8)]
    } else {
        eprintln!("shards: frontier (10^4..10^6 clients x group size)...");
        crate::shard_frontier(&[10_000, 100_000, 1_000_000], &[100, 320, 1000])
    };
    let join = |points: &[crate::ShardPoint]| {
        points
            .iter()
            .map(shard_point_json)
            .collect::<Vec<_>>()
            .join(",\n")
    };
    format!(
        "{{\"scaling\":[\n{}\n],\"frontier\":[\n{}\n]}}",
        join(&scaling),
        join(&frontier)
    )
}

/// Standalone `dissent-bench/v1` document carrying only the sharding study
/// (plus the history block), for `experiments -- shards`.  Virtual-time
/// simulation, so unlike [`bench_json`] the numbers do not depend on the
/// machine.
pub fn shards_json(quick: bool) -> String {
    format!(
        "{{\n\"schema\":\"{}\",\n\"pr\":{},\n\"threads\":{},\n\"shards\":{},\n\"history\":{}\n}}\n",
        SCHEMA,
        PR,
        rayon::current_num_threads(),
        shards_section(quick),
        history_section(),
    )
}

/// Headline numbers from earlier PRs, carried so the checked-in document
/// is a trajectory rather than a point sample.  Sources: the criterion
/// groups recorded in CHANGES.md when each PR landed (same machine class,
/// release builds).
fn history_section() -> String {
    concat!(
        "[",
        "{\"pr\":9,\"note\":\"metrics/observability layer, reconnect/retry fix sweep\",",
        "\"session16_window4_rounds_per_sec\":2321,",
        "\"sim_instrumentation_overhead_pct\":0},",
        "{\"pr\":6,\"note\":\"8-block fused ChaCha20 engine, batched DLEQ proving\",",
        "\"chacha_fill_mib_s\":{\"avx512_131072\":3294},",
        "\"apply_fused_131072_mib_s\":3537,\"apply_twopass_131072_mib_s\":2673,",
        "\"shuffle_prove_batched_entries64_soundness8_ms\":8.13,",
        "\"shuffle_prove_unbatched_entries64_soundness8_ms\":9.33,",
        "\"session16_window4_rounds_per_sec\":2280},",
        "{\"pr\":4,\"note\":\"4-block kernels, two-pass apply, serial DLEQ proving\",",
        "\"chacha_fill_mib_s\":{\"scalar_4096\":556,\"portable4_4096\":761,",
        "\"avx2_4096\":1798,\"scalar_131072\":560,\"avx2_131072\":1768},",
        "\"pad_expand_131072_us\":85,",
        "\"shuffle_prove_entries64_soundness8_ms\":3.13},",
        "{\"pr\":3,\"note\":\"single-block scalar engine, fused pad fold\",",
        "\"pad_expand_131072_us\":223,",
        "\"pad_bit_reveal_131072_us\":4.8},",
        "{\"pr\":2,\"note\":\"batch verification via n-way multi-exp\",",
        "\"dleq_batch_verify64_testing256_ms\":2.85,",
        "\"dleq_sequential_verify64_testing256_ms\":4.13}",
        "]"
    )
    .to_string()
}

/// Run the full measurement suite and return the `dissent-bench/v1`
/// document as a pretty-enough JSON string (one top-level key per line).
pub fn bench_json() -> String {
    eprintln!("bench: sweeping pad backends...");
    let pads = pad_backend_sweep();
    eprintln!("bench: measuring shuffle proving...");
    let shuffle = shuffle_section();
    eprintln!("bench: measuring session rounds/sec...");
    let session = session_section();
    eprintln!("bench: measuring parallel pad accumulation...");
    let parallel = parallel_section();
    eprintln!("bench: sweeping the federated-sharding frontier...");
    let shards = shards_section(false);
    format!(
        "{{\n\"schema\":\"{}\",\n\"pr\":{},\n\"threads\":{},\n\"pad\":[\n{}\n],\n\"shuffle\":{},\n\"session\":{},\n\"parallel\":{},\n\"shards\":{},\n\"history\":{}\n}}\n",
        SCHEMA,
        PR,
        rayon::current_num_threads(),
        pads.join(",\n"),
        shuffle,
        session,
        parallel,
        shards,
        history_section(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_probe_emits_one_object_per_backend_pair() {
        let json = pad_probe_json();
        assert!(json.starts_with("{\"wide4\":\""));
        assert!(json.contains("\"sizes\":["));
        assert!(json.contains("\"bytes\":4096"));
        assert!(json.contains("\"bytes\":131072"));
        // Balanced braces/brackets — the hand-rolled emitter's cheap
        // structural check (no JSON parser is vendored).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn history_is_structurally_balanced() {
        let json = history_section();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"pr\":4"));
        assert!(json.contains("\"pr\":9"));
    }

    #[test]
    fn shard_point_json_is_structurally_balanced() {
        let json = shard_point_json(&crate::ShardPoint {
            clients_total: 800,
            group_size: 100,
            shards: 8,
            rounds_per_group: 8,
            rounds_per_sec: 12.5,
            messages_per_sec: 1234.0,
            p50_latency_s: 0.61,
            p99_latency_s: 1.8,
            anonymity_set: 99.2,
        });
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"clients\":800"));
        assert!(json.contains("\"federated_msgs_per_sec\":1234"));
        assert!(json.contains("\"anonymity_set\":99.2"));
    }
}
