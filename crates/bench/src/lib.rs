//! # dissent-bench
//!
//! Experiment harnesses that regenerate every table and figure in the
//! evaluation section of *Dissent in Numbers* (OSDI 2012).  Each public
//! function returns the data series for one figure; the `experiments` binary
//! prints them as tables, and the Criterion benches wrap the same functions
//! (plus microbenchmarks of the real cryptographic primitives).
//!
//! See `EXPERIMENTS.md` at the workspace root for the paper-vs-measured
//! comparison of every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perfjson;

pub use perfjson::{bench_json, pad_probe_json, shards_json};

use dissent_core::policy::WindowPolicy;
use dissent_core::timing::{simulate_full_protocol, simulate_rounds, Scenario, Workload};
use dissent_net::sim::{to_secs, Stats, SECOND};
use dissent_net::trace::{generate, TraceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A named window-closure policy under evaluation (Figure 6 / §5.1).
#[derive(Clone, Debug)]
pub struct PolicyResult {
    /// Display name, matching the paper's legend.
    pub name: String,
    /// Per-round exchange completion times (seconds) — the CDF of Figure 6.
    pub completion_secs: Vec<f64>,
    /// Fraction of eventually-submitting clients that missed the window.
    pub missed_fraction: f64,
    /// Fraction of rounds that hit the hard deadline.
    pub deadline_fraction: f64,
}

/// §5.1 + Figure 6: replay a PlanetLab-style submission trace against the
/// four window-closure policies.
pub fn window_policy_study(rounds: usize) -> Vec<PolicyResult> {
    let trace = generate(&TraceConfig {
        num_rounds: rounds,
        ..TraceConfig::default()
    });
    let policies: Vec<(String, WindowPolicy)> = vec![
        (
            "wait-all (120 s hard deadline)".to_string(),
            WindowPolicy::WaitAll {
                hard_deadline: 120 * SECOND,
            },
        ),
        (
            "95% then 1.1x".to_string(),
            WindowPolicy::FractionThenMultiplier {
                fraction: 0.95,
                multiplier: 1.1,
                hard_deadline: 120 * SECOND,
            },
        ),
        (
            "95% then 1.2x".to_string(),
            WindowPolicy::FractionThenMultiplier {
                fraction: 0.95,
                multiplier: 1.2,
                hard_deadline: 120 * SECOND,
            },
        ),
        (
            "95% then 2x".to_string(),
            WindowPolicy::FractionThenMultiplier {
                fraction: 0.95,
                multiplier: 2.0,
                hard_deadline: 120 * SECOND,
            },
        ),
    ];
    policies
        .into_iter()
        .map(|(name, policy)| {
            let mut completion = Vec::with_capacity(trace.rounds.len());
            let mut total_submitting = 0usize;
            let mut total_missed = 0usize;
            let mut deadline_rounds = 0usize;
            for round in &trace.rounds {
                let delays = round.submission_delays();
                // "we do not close the submission window until at least 95%
                // have submitted messages" — the servers' expectation is the
                // set of clients that are actually participating this round
                // (tracked via the previous participation count), not the
                // full static roster.
                let outcome = policy.apply(&delays, delays.len());
                completion.push(to_secs(outcome.close_time));
                total_submitting += delays.len();
                total_missed += outcome.missed;
                if outcome.hit_hard_deadline {
                    deadline_rounds += 1;
                }
            }
            PolicyResult {
                name,
                missed_fraction: total_missed as f64 / total_submitting.max(1) as f64,
                deadline_fraction: deadline_rounds as f64 / trace.rounds.len().max(1) as f64,
                completion_secs: completion,
            }
        })
        .collect()
}

/// One point of the Figure-7/8 sweeps.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Number of clients.
    pub clients: usize,
    /// Number of servers.
    pub servers: usize,
    /// Workload label ("1% submit" or "128K message").
    pub workload: String,
    /// Testbed label ("DeterLab" or "PlanetLab").
    pub testbed: String,
    /// Mean client-submission time per round (seconds).
    pub client_submission_secs: f64,
    /// Mean server-processing time per round (seconds).
    pub server_processing_secs: f64,
}

impl ScalingPoint {
    /// Total time per round in seconds.
    pub fn total_secs(&self) -> f64 {
        self.client_submission_secs + self.server_processing_secs
    }
}

fn measure(
    scenario: &Scenario,
    label_workload: &str,
    label_testbed: &str,
    rounds: usize,
) -> ScalingPoint {
    let timings = simulate_rounds(scenario, rounds);
    let mean = |f: &dyn Fn(&dissent_core::timing::RoundTiming) -> f64| {
        timings.iter().map(f).sum::<f64>() / timings.len().max(1) as f64
    };
    ScalingPoint {
        clients: scenario.topology.num_clients,
        servers: scenario.topology.num_servers,
        workload: label_workload.to_string(),
        testbed: label_testbed.to_string(),
        client_submission_secs: mean(&|t| to_secs(t.client_submission)),
        server_processing_secs: mean(&|t| to_secs(t.server_processing)),
    }
}

/// Figure 7: time per round vs number of clients (32 servers), for the
/// microblog and data-sharing workloads on DeterLab plus the microblog
/// workload on PlanetLab.
pub fn clients_scaling(client_counts: &[usize], rounds: usize) -> Vec<ScalingPoint> {
    let mut out = Vec::new();
    for &n in client_counts {
        out.push(measure(
            &Scenario::deterlab(n, 32, Workload::paper_microblog()),
            "1% submit",
            "DeterLab",
            rounds,
        ));
        out.push(measure(
            &Scenario::deterlab(n, 32, Workload::paper_bulk()),
            "128K message",
            "DeterLab",
            rounds,
        ));
        out.push(measure(
            &Scenario::planetlab(n, 17, Workload::paper_microblog()),
            "1% submit",
            "PlanetLab",
            rounds,
        ));
    }
    out
}

/// Figure 8: time per round vs number of servers at 640 clients.
pub fn servers_scaling(server_counts: &[usize], rounds: usize) -> Vec<ScalingPoint> {
    let mut out = Vec::new();
    for &m in server_counts {
        out.push(measure(
            &Scenario::deterlab(640, m, Workload::paper_microblog()),
            "1% submit",
            "DeterLab",
            rounds,
        ));
        out.push(measure(
            &Scenario::deterlab(640, m, Workload::paper_bulk()),
            "128K message",
            "DeterLab",
            rounds,
        ));
    }
    out
}

/// One row of the Figure-9 full-protocol breakdown.
#[derive(Clone, Debug)]
pub struct FullProtocolPoint {
    /// Number of clients.
    pub clients: usize,
    /// Key-shuffle duration (seconds).
    pub key_shuffle_secs: f64,
    /// One DC-net round (seconds).
    pub dcnet_round_secs: f64,
    /// Accusation (blame) shuffle duration (seconds).
    pub blame_shuffle_secs: f64,
    /// Blame evaluation duration (seconds).
    pub blame_evaluation_secs: f64,
}

/// Figure 9: whole-protocol phase durations for 24 servers and 128-byte
/// messages, across client counts.
pub fn full_protocol_study(client_counts: &[usize]) -> Vec<FullProtocolPoint> {
    client_counts
        .iter()
        .map(|&n| {
            let scenario = Scenario::deterlab(n, 24, Workload::paper_microblog());
            let t = simulate_full_protocol(&scenario);
            FullProtocolPoint {
                clients: n,
                key_shuffle_secs: to_secs(t.key_shuffle),
                dcnet_round_secs: to_secs(t.dcnet_round),
                blame_shuffle_secs: to_secs(t.blame_shuffle),
                blame_evaluation_secs: to_secs(t.blame_evaluation),
            }
        })
        .collect()
}

/// One configuration's download statistics for Figures 10 and 11.
#[derive(Clone, Debug)]
pub struct BrowsingResult {
    /// Configuration label.
    pub config: String,
    /// Per-page download times (seconds), page order = corpus order.
    pub page_secs: Vec<f64>,
    /// Mean seconds per megabyte of page content.
    pub secs_per_mb: f64,
}

/// Figures 10 and 11: Alexa-like Top-100 downloads under the four
/// configurations.
pub fn web_browsing_study() -> Vec<BrowsingResult> {
    use dissent_apps::web::{alexa_like_corpus, BrowsingConfig, BrowsingModel};
    let corpus = alexa_like_corpus(100, 0xA1E);
    let model = BrowsingModel::default();
    BrowsingConfig::all()
        .iter()
        .map(|&cfg| {
            let times = model.download_corpus(cfg, &corpus);
            let total_mb: f64 = corpus.iter().map(|p| p.total_bytes() as f64 / 1e6).sum();
            let total_s: f64 = times.iter().sum();
            BrowsingResult {
                config: cfg.label().to_string(),
                secs_per_mb: total_s / total_mb,
                page_secs: times,
            }
        })
        .collect()
}

/// One row of the Dissent-vs-baseline comparison (the paper's §1/§2.2
/// scalability claims).
#[derive(Clone, Debug)]
pub struct BaselinePoint {
    /// Group size.
    pub members: usize,
    /// Dissent round time (seconds), 24 servers.
    pub dissent_secs: f64,
    /// Classic peer DC-net round time (seconds).
    pub peer_secs: f64,
    /// Herbivore-style leader round time (seconds).
    pub leader_secs: f64,
    /// Aggregate peer traffic per round (MB).
    pub peer_traffic_mb: f64,
    /// Aggregate Dissent client traffic per round (MB).
    pub dissent_traffic_mb: f64,
}

/// Ablation: Dissent's anytrust client/server DC-net vs the all-to-all peer
/// DC-net and a leader-combined variant, across group sizes.
pub fn baseline_comparison(sizes: &[usize]) -> Vec<BaselinePoint> {
    use dissent_baseline::peer::{leader_round_time, peer_round_time, peer_total_traffic};
    use dissent_net::churn::ChurnModel;
    use dissent_net::costmodel::CostModel;
    let mut rng = StdRng::seed_from_u64(0xBA5E);
    sizes
        .iter()
        .map(|&n| {
            let workload = Workload::paper_microblog();
            let scenario = Scenario::deterlab(n, 24, workload);
            let len = workload.cleartext_len(n);
            let rounds = simulate_rounds(&scenario, 5);
            let dissent = rounds.iter().map(|r| r.total_secs()).sum::<f64>() / rounds.len() as f64;
            let cost = CostModel::default();
            let link = scenario.topology.client_link;

            // The classic designs cannot close a round without *every*
            // member's ciphertext: they pay the slowest member's delay, and
            // any member disconnecting mid-round forces a full restart
            // (§3.1).  Charge both against the same DeterLab churn model the
            // Dissent scenario uses.
            let churn = ChurnModel::deterlab();
            let behaviours = churn.sample_population(&mut rng, n);
            let offline = behaviours.iter().filter(|b| b.delay().is_none()).count();
            let slowest = behaviours
                .iter()
                .filter_map(|b| b.delay())
                .max()
                .unwrap_or(0);
            let p_round_survives = (1.0 - churn.offline_prob).powi(n as i32);
            let expected_attempts = (1.0 / p_round_survives.max(1e-6)).min(50.0);
            let _ = offline;
            let peer_once = to_secs(slowest + peer_round_time(&cost, &link, n, len));
            let leader_once = to_secs(slowest + leader_round_time(&cost, &link, n, len));
            BaselinePoint {
                members: n,
                dissent_secs: dissent,
                peer_secs: peer_once * expected_attempts,
                leader_secs: leader_once * expected_attempts,
                peer_traffic_mb: peer_total_traffic(n, len) as f64 / 1e6,
                dissent_traffic_mb: (2 * n * len) as f64 / 1e6,
            }
        })
        .collect()
}

/// Ablation: effect of the α participation threshold under an adversarial
/// DoS that takes a fraction of clients offline right before a sensitive
/// round (§3.7).  Returns (alpha, fraction of rounds that complete,
/// minimum participation among completed rounds).
pub fn alpha_ablation(dos_fraction: f64) -> Vec<(f64, f64, usize)> {
    use dissent_core::policy::participation_threshold;
    use dissent_net::churn::ChurnModel;
    let mut rng = StdRng::seed_from_u64(0xA1FA);
    let base = ChurnModel::planetlab();
    let dosed = base.clone().with_dos_fraction(dos_fraction);
    let n = 500;
    [0.0, 0.5, 0.8, 0.9, 0.95, 0.99]
        .iter()
        .map(|&alpha| {
            let mut completed = 0usize;
            let mut min_participation = usize::MAX;
            let rounds = 100;
            let mut prev = n;
            for r in 0..rounds {
                // The adversary strikes in the second half of the run.
                let model = if r >= rounds / 2 { &dosed } else { &base };
                let online = model
                    .sample_population(&mut rng, n)
                    .iter()
                    .filter(|b| b.delay().is_some())
                    .count();
                let needed = participation_threshold(alpha, prev);
                if online >= needed {
                    completed += 1;
                    min_participation = min_participation.min(online);
                    prev = online;
                }
                // On failure the servers publish a fresh count (the observed
                // online population) for the next round's decision.
                else {
                    prev = online;
                }
            }
            (
                alpha,
                completed as f64 / rounds as f64,
                if min_participation == usize::MAX {
                    0
                } else {
                    min_participation
                },
            )
        })
        .collect()
}

/// One point of the pipelining study (§3.6 / Figure 8): round latency and
/// throughput for one topology × client count × pipeline window.
#[derive(Clone, Debug)]
pub struct PipelinePoint {
    /// Topology label.
    pub topology: String,
    /// Number of clients.
    pub clients: usize,
    /// Pipeline window W (rounds in flight).
    pub window: usize,
    /// Mean round latency in seconds (batch open → last delivery).
    pub mean_latency_s: f64,
    /// Median round latency.
    pub p50_latency_s: f64,
    /// 90th-percentile round latency.
    pub p90_latency_s: f64,
    /// 99th-percentile round latency.
    pub p99_latency_s: f64,
    /// Round throughput.
    pub rounds_per_sec: f64,
    /// Protocol-message throughput.
    pub messages_per_sec: f64,
}

/// Pipelining study: sweep client counts × pipeline windows over the
/// DeterLab and PlanetLab testbeds on the event-driven `dissent-net`
/// round driver.  Message sizes are derived from the real typed-message
/// encodings at production (2048-bit) parameters, so the simulated bytes
/// match what `dissent-core::messages` would put on the wire.
pub fn pipeline_study(
    client_counts: &[usize],
    windows: &[usize],
    rounds: usize,
) -> Vec<PipelinePoint> {
    pipeline_study_metered(
        client_counts,
        windows,
        rounds,
        &dissent_metrics::Registry::new(),
    )
}

/// [`pipeline_study`], recording every simulated round into `registry`'s
/// `dissent_sim_round_latency_seconds` / `dissent_sim_rounds_total`
/// instruments — the same catalog the live node exports — so a sweep's
/// aggregate latency histogram can be scraped or asserted on exactly like
/// the real thing.  Per-point numbers still come from each run's report.
pub fn pipeline_study_metered(
    client_counts: &[usize],
    windows: &[usize],
    rounds: usize,
    registry: &dissent_metrics::Registry,
) -> Vec<PipelinePoint> {
    use dissent_core::messages::sim_wire_sizes;
    use dissent_crypto::group::Group;
    use dissent_net::churn::ChurnModel;
    use dissent_net::driver::{simulate_with_metrics, SimConfig};
    use dissent_net::topology::Topology;

    let group = Group::rfc3526_2048();
    let workload = Workload::paper_microblog();
    let mut out = Vec::new();
    for &n in client_counts {
        let total_len = workload.cleartext_len(n);
        let sizes = sim_wire_sizes(&group, total_len);
        let testbeds = [
            (Topology::deterlab(n, 32), ChurnModel::deterlab()),
            (Topology::planetlab(n, 17), ChurnModel::planetlab()),
        ];
        for (topology, churn) in testbeds {
            for &window in windows {
                let mut cfg =
                    SimConfig::new(topology.clone(), churn.clone(), total_len, window, rounds);
                cfg.sizes = sizes;
                let report = simulate_with_metrics(cfg, registry);
                out.push(PipelinePoint {
                    topology: topology.name.clone(),
                    clients: n,
                    window,
                    mean_latency_s: report.round_latency.mean(),
                    p50_latency_s: report.round_latency.quantile(0.5),
                    p90_latency_s: report.round_latency.quantile(0.9),
                    p99_latency_s: report.round_latency.quantile(0.99),
                    rounds_per_sec: report.rounds_per_sec,
                    messages_per_sec: report.messages_per_sec,
                });
            }
        }
    }
    out
}

/// One point of the federated-sharding frontier: many Maglev-placed groups
/// advancing concurrently on one shared virtual clock
/// (`dissent_net::federation`).
#[derive(Clone, Debug)]
pub struct ShardPoint {
    /// Total simulated clients across all groups.
    pub clients_total: usize,
    /// Clients per group — the upper bound on each round's anonymity set.
    pub group_size: usize,
    /// Number of groups (shards).
    pub shards: usize,
    /// DC-net rounds simulated per group.
    pub rounds_per_group: usize,
    /// Aggregate certified rounds per second across the federation.
    pub rounds_per_sec: f64,
    /// Aggregate federated message throughput.
    pub messages_per_sec: f64,
    /// Median round latency (seconds), pooled over all groups.
    pub p50_latency_s: f64,
    /// 99th-percentile round latency, pooled over all groups.
    pub p99_latency_s: f64,
    /// Mean effective anonymity-set size: participants per certified round.
    pub anonymity_set: f64,
}

/// Simulate one federated configuration — `shards` groups of `group_size`
/// DeterLab clients each, every group a full pipelined DC-net simulation
/// with wire sizes from the real typed-message encodings at 2048-bit
/// parameters — and report the aggregate.
pub fn shard_point(group_size: usize, shards: usize, rounds: usize) -> ShardPoint {
    shard_point_metered(
        group_size,
        shards,
        rounds,
        &dissent_metrics::Registry::new(),
    )
}

/// [`shard_point`], recording every group's rounds and latencies into
/// `registry` under a per-shard `shard="g<i>"` label, the same series the
/// live node exports.
pub fn shard_point_metered(
    group_size: usize,
    shards: usize,
    rounds: usize,
    registry: &dissent_metrics::Registry,
) -> ShardPoint {
    use dissent_core::messages::sim_wire_sizes;
    use dissent_crypto::group::Group;
    use dissent_net::churn::ChurnModel;
    use dissent_net::driver::SimConfig;
    use dissent_net::federation::{FederatedSimConfig, FederatedSimDriver};
    use dissent_net::topology::Topology;

    let group = Group::rfc3526_2048();
    let workload = Workload::paper_microblog();
    let total_len = workload.cleartext_len(group_size);
    let sizes = sim_wire_sizes(&group, total_len);
    let mut template = SimConfig::new(
        Topology::deterlab(group_size, 8),
        ChurnModel::deterlab(),
        total_len,
        4,
        rounds,
    );
    template.sizes = sizes;
    let report =
        FederatedSimDriver::with_registry(FederatedSimConfig::new(template, shards), registry)
            .run();
    ShardPoint {
        clients_total: group_size * shards,
        group_size,
        shards,
        rounds_per_group: rounds,
        rounds_per_sec: report.rounds_per_sec,
        messages_per_sec: report.messages_per_sec,
        p50_latency_s: report.round_latency.quantile(0.5),
        p99_latency_s: report.round_latency.quantile(0.99),
        anonymity_set: report.anonymity_set.mean(),
    }
}

/// Shard-count scaling series at fixed group size: 1, 2, 4, … up to
/// `max_shards` groups, all on one shared virtual clock.  Aggregate
/// rounds/sec should grow near-linearly — groups share no state, only the
/// clock.
pub fn shard_scaling(group_size: usize, max_shards: usize, rounds: usize) -> Vec<ShardPoint> {
    let mut out = Vec::new();
    let mut shards = 1;
    while shards <= max_shards {
        out.push(shard_point(group_size, shards, rounds));
        shards *= 2;
    }
    out
}

/// The 10^4–10^6-client frontier: for each (total clients, group size)
/// combination place `total / group_size` groups, clamped to 1..=1024
/// shards; when the clamp binds, the per-group size grows so the total
/// client count is preserved.  Larger fleets run fewer rounds per group —
/// the statistic of interest is throughput, and event volume already
/// scales with the client count.
pub fn shard_frontier(totals: &[usize], group_sizes: &[usize]) -> Vec<ShardPoint> {
    let mut out = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for &total in totals {
        let rounds = match total {
            t if t >= 1_000_000 => 4,
            t if t >= 100_000 => 6,
            _ => 12,
        };
        for &gs in group_sizes {
            let shards = (total / gs).clamp(1, 1024);
            let per_group = (total / shards).max(16);
            // Two requested group sizes can clamp to the same shape (e.g.
            // 10^6 clients at sizes 100 and 320 both become 1024 x 976);
            // simulate each shape once.
            if seen.insert((shards, per_group, rounds)) {
                out.push(shard_point(per_group, shards, rounds));
            }
        }
    }
    out
}

/// Measure the real cost of one modular exponentiation in each parameter
/// set, for re-calibrating the [`dissent_net::CostModel`].
pub fn calibrate_modexp() -> Vec<(String, f64)> {
    use dissent_crypto::group::Group;
    use std::time::Instant;
    let mut rng = StdRng::seed_from_u64(1);
    [
        Group::testing_256(),
        Group::modp_512(),
        Group::modp_1024(),
        Group::rfc3526_2048(),
    ]
    .into_iter()
    .map(|g| {
        let x = g.random_scalar(&mut rng);
        let reps = if g.modulus().bit_len() > 1024 { 3 } else { 10 };
        // Untimed warm-up: the first exp_base on a fresh Group pays the
        // one-off lazy Montgomery-context and comb-table build, which would
        // otherwise inflate a 3-rep steady-state calibration severalfold.
        let _ = g.exp_base(&x);
        let start = Instant::now();
        for _ in 0..reps {
            let _ = g.exp_base(&x);
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;
        (g.name().to_string(), us)
    })
    .collect()
}

/// Build a CDF (value, cumulative fraction) from raw samples.
pub fn cdf(samples: &[f64]) -> Vec<(f64, f64)> {
    let mut stats = Stats::new();
    for &s in samples {
        stats.push(s);
    }
    stats.cdf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_policy_study_matches_section_5_1_shape() {
        let results = window_policy_study(120);
        assert_eq!(results.len(), 4);
        let by_name = |n: &str| results.iter().find(|r| r.name.contains(n)).unwrap();
        let wait_all = by_name("wait-all");
        let p11 = by_name("1.1x");
        let p12 = by_name("1.2x");
        let p20 = by_name("then 2x");
        // Early-cutoff policies miss a few percent of clients, decreasing
        // with the multiplier (paper: 2.3%, 1.5%, 0.5%).
        assert!(p11.missed_fraction > p12.missed_fraction);
        assert!(p12.missed_fraction > p20.missed_fraction);
        assert!(p11.missed_fraction < 0.15);
        assert!(wait_all.missed_fraction < p20.missed_fraction + 1e-9);
        // Waiting for everyone is dominated by stragglers: median completion
        // an order of magnitude above the cutoff policies, and a substantial
        // fraction of rounds hit the 120-second deadline.
        let median = |r: &PolicyResult| {
            let mut v = r.completion_secs.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        assert!(median(wait_all) > 5.0 * median(p11));
        assert!(wait_all.deadline_fraction > 0.05);
        assert!(p11.deadline_fraction < 0.05);
    }

    #[test]
    fn clients_scaling_grows_and_bulk_dominates() {
        let points = clients_scaling(&[32, 1000], 5);
        assert_eq!(points.len(), 6);
        let get = |c: usize, w: &str, t: &str| {
            points
                .iter()
                .find(|p| p.clients == c && p.workload == w && p.testbed == t)
                .unwrap()
                .total_secs()
        };
        assert!(get(1000, "1% submit", "DeterLab") > get(32, "1% submit", "DeterLab"));
        assert!(get(1000, "128K message", "DeterLab") > get(1000, "1% submit", "DeterLab"));
        assert!(get(1000, "1% submit", "PlanetLab") > get(1000, "1% submit", "DeterLab"));
    }

    #[test]
    fn servers_scaling_shows_bulk_benefit() {
        let points = servers_scaling(&[1, 24], 5);
        let bulk_1 = points
            .iter()
            .find(|p| p.servers == 1 && p.workload == "128K message")
            .unwrap();
        let bulk_24 = points
            .iter()
            .find(|p| p.servers == 24 && p.workload == "128K message")
            .unwrap();
        assert!(bulk_1.total_secs() > bulk_24.total_secs());
    }

    #[test]
    fn full_protocol_study_matches_figure_9_ordering() {
        let points = full_protocol_study(&[24, 500]);
        for p in &points {
            assert!(p.blame_shuffle_secs > p.key_shuffle_secs);
            assert!(p.key_shuffle_secs > p.dcnet_round_secs);
        }
        assert!(points[1].key_shuffle_secs > points[0].key_shuffle_secs);
    }

    #[test]
    fn web_browsing_study_matches_figure_10_ordering() {
        let results = web_browsing_study();
        assert_eq!(results.len(), 4);
        let per_mb: Vec<f64> = results.iter().map(|r| r.secs_per_mb).collect();
        // no anonymity < Tor < Dissent < Dissent+Tor
        assert!(per_mb[0] < per_mb[1]);
        assert!(per_mb[1] < per_mb[2]);
        assert!(per_mb[2] < per_mb[3]);
    }

    #[test]
    fn baseline_comparison_shows_dissent_winning_at_scale() {
        let rows = baseline_comparison(&[40, 1000]);
        let small = &rows[0];
        let large = &rows[1];
        // At the ~40-node scale prior systems operated at, everyone is fast.
        assert!(small.peer_secs < 10.0);
        // At 1000 nodes the peer design's aggregate traffic explodes while
        // Dissent stays near-flat.
        assert!(large.peer_traffic_mb > 100.0 * large.dissent_traffic_mb);
        assert!(large.dissent_secs < large.peer_secs);
    }

    #[test]
    fn alpha_ablation_trades_availability_for_guarantees() {
        let rows = alpha_ablation(0.4);
        let no_guard = rows.iter().find(|r| r.0 == 0.0).unwrap();
        let strict = rows.iter().find(|r| r.0 == 0.99).unwrap();
        // Without a threshold every round completes, including the DoS'd
        // ones with a much smaller anonymity set.
        assert!(no_guard.1 > 0.99);
        // A strict threshold refuses some rounds under attack.
        assert!(strict.1 < no_guard.1);
    }

    #[test]
    fn pipelining_raises_throughput_on_both_testbeds() {
        let points = pipeline_study(&[320], &[1, 4], 16);
        assert_eq!(points.len(), 4);
        for testbed in ["deterlab", "planetlab"] {
            let get = |w: usize| {
                points
                    .iter()
                    .find(|p| p.topology.starts_with(testbed) && p.window == w)
                    .unwrap()
            };
            let w1 = get(1);
            let w4 = get(4);
            assert!(
                w4.rounds_per_sec > w1.rounds_per_sec,
                "{testbed}: W=4 {} vs W=1 {} rounds/s",
                w4.rounds_per_sec,
                w1.rounds_per_sec
            );
            // Latency quantiles are ordered and positive.
            assert!(w1.p50_latency_s > 0.0);
            assert!(w1.p50_latency_s <= w1.p90_latency_s);
            assert!(w1.p90_latency_s <= w1.p99_latency_s);
        }
        // The wide-area testbed pays more latency than the LAN.
        let det = points
            .iter()
            .find(|p| p.topology.starts_with("deterlab") && p.window == 1)
            .unwrap();
        let pl = points
            .iter()
            .find(|p| p.topology.starts_with("planetlab") && p.window == 1)
            .unwrap();
        assert!(pl.p50_latency_s > det.p50_latency_s);
    }

    #[test]
    fn pipeline_sweep_records_into_the_shared_instruments() {
        let registry = dissent_metrics::Registry::new();
        let points = pipeline_study_metered(&[100], &[1, 2], 16, &registry);
        assert_eq!(points.len(), 4);
        let total = registry
            .counter_value("dissent_sim_rounds_total", &[])
            .unwrap();
        assert!(total > 0, "sweep recorded no rounds");
        let hist = registry.latency_histogram("dissent_sim_round_latency_seconds", "");
        assert_eq!(hist.count(), total);
        assert!(hist.quantile(0.5) > 0.0);
        // And the exposition carries the same series.
        let rendered = registry.render();
        assert!(rendered.contains("dissent_sim_round_latency_seconds_bucket"));
    }

    #[test]
    fn shard_scaling_is_near_linear_to_16_groups() {
        // The ISSUE-10 acceptance bar: aggregate rounds/sec from 1 to 16
        // shards at fixed group size scales at least 0.8x linear.  Group
        // size 100 so the 95% closure target rarely waits on a Pareto
        // straggler (at 50 clients it frequently does, and one straggler
        // wait can halve a group's throughput).
        let points = shard_scaling(100, 16, 12);
        assert_eq!(points.len(), 5);
        let one = points[0].rounds_per_sec;
        let sixteen = points.last().unwrap().rounds_per_sec;
        assert!(
            sixteen >= 0.8 * 16.0 * one,
            "1 shard {one:.2} r/s, 16 shards {sixteen:.2} r/s"
        );
        // Sharding trades anonymity for throughput: the per-group
        // anonymity set stays near the group size no matter how many
        // shards run, while aggregate throughput grows with the count.
        for p in &points {
            assert!(p.anonymity_set > 80.0 && p.anonymity_set <= 100.0);
            assert!(p.p50_latency_s > 0.0 && p.p50_latency_s <= p.p99_latency_s);
        }
    }

    #[test]
    fn shard_frontier_preserves_totals_under_the_clamp() {
        // 10^4 clients at group size 100 wants 100 shards (no clamp); a
        // hypothetical 10^4 at group size 8 wants 1250 and gets clamped to
        // 1024 with the per-group size grown to compensate.
        let points = shard_frontier(&[10_000], &[8, 100]);
        assert_eq!(points[0].shards, 1024);
        assert!(points[0].group_size >= 9);
        assert!(points[0].clients_total >= 9_000);
        assert_eq!(points[1].shards, 100);
        assert_eq!(points[1].group_size, 100);
        assert_eq!(points[1].clients_total, 10_000);
    }

    #[test]
    fn cdf_is_monotone() {
        let c = cdf(&[3.0, 1.0, 2.0]);
        assert_eq!(c.len(), 3);
        assert!(c.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }
}
