//! Regenerate every table and figure of the Dissent OSDI 2012 evaluation.
//!
//! ```text
//! cargo run --release -p dissent-bench --bin experiments -- all
//! cargo run --release -p dissent-bench --bin experiments -- fig7
//! ```
//!
//! Subcommands: `sec5_1`, `fig6`, `fig7`, `fig8`, `fig9`, `fig10`, `fig11`,
//! `pipeline`, `baseline`, `alpha`, `calibrate`, `all`, `bench` — which
//! runs the perf-trajectory suite and writes `BENCH_10.json` (path
//! overridable with `--out <path>`; schema documented in
//! `dissent_bench::perfjson`) — and `shards`, which sweeps the federated
//! multi-group frontier (10^4–10^6 simulated clients across Maglev-placed
//! shards) and writes the sharding section as a standalone trajectory
//! document (`--quick` keeps it to 10^4 clients and ≤ 8 groups for the CI
//! smoke lane).  `bench-pad` is the internal per-backend probe `bench`
//! re-executes itself with.

use dissent_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let quick = args.iter().any(|a| a == "--quick");
    let rounds = if quick { 10 } else { 40 };

    match which {
        "sec5_1" => sec5_1(rounds),
        "fig6" => fig6(rounds),
        "fig7" => fig7(rounds),
        "fig8" => fig8(rounds),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "pipeline" => pipeline(rounds),
        "baseline" | "ablation_baseline" => baseline(),
        "alpha" | "ablation_alpha" => alpha(),
        "calibrate" => calibrate(),
        "bench" => bench(&args),
        "shards" => shards(&args, quick),
        // Internal: single-backend pad probe, spawned by `bench` with the
        // ChaCha20 force overrides set (the dispatch is latched per
        // process, so each backend needs a fresh one).
        "bench-pad" => println!("{}", pad_probe_json()),
        "all" => {
            sec5_1(rounds);
            fig6(rounds);
            fig7(rounds);
            fig8(rounds);
            fig9();
            fig10();
            fig11();
            pipeline(rounds);
            baseline();
            alpha();
            calibrate();
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!(
                "known: sec5_1 fig6 fig7 fig8 fig9 fig10 fig11 pipeline baseline alpha calibrate bench shards all"
            );
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn out_path<'a>(args: &'a [String], default: &'a str) -> &'a str {
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or(default)
}

fn bench(args: &[String]) {
    header("Perf trajectory (dissent-bench/v1)");
    let out = out_path(args, "BENCH_10.json");
    let json = bench_json();
    print!("{json}");
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("bench: wrote {out}");
}

fn shards(args: &[String], quick: bool) {
    header("Federated sharding — Maglev-placed groups on one virtual clock");
    let out = out_path(args, "BENCH_10.json");
    let json = shards_json(quick);
    print!("{json}");
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("shards: wrote {out}");
}

fn sec5_1(rounds: usize) {
    header("Section 5.1 — fraction of clients missing the submission window");
    println!("(paper: 1.1x -> 2.3%, 1.2x -> 1.5%, 2x -> 0.5%)");
    for r in window_policy_study(rounds) {
        println!(
            "  {:<32} missed {:>5.2}%   hard-deadline rounds {:>5.1}%",
            r.name,
            r.missed_fraction * 100.0,
            r.deadline_fraction * 100.0
        );
    }
}

fn fig6(rounds: usize) {
    header("Figure 6 — CDF of message-exchange completion time per window policy");
    let results = window_policy_study(rounds);
    println!(
        "  {:<10} {}",
        "quantile",
        results
            .iter()
            .map(|r| format!("{:>28}", r.name))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00] {
        let row: Vec<String> = results
            .iter()
            .map(|r| {
                let mut v = r.completion_secs.clone();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let idx = ((v.len() - 1) as f64 * q).round() as usize;
                format!("{:>26.2} s", v[idx])
            })
            .collect();
        println!("  p{:<9} {}", (q * 100.0) as u32, row.join(" "));
    }
}

fn fig7(rounds: usize) {
    header(
        "Figure 7 — time per round vs number of clients (32 servers on DeterLab, 17 on PlanetLab)",
    );
    println!(
        "  {:>7} {:<14} {:<10} {:>16} {:>18} {:>12}",
        "clients", "workload", "testbed", "client submit", "server processing", "total"
    );
    for p in clients_scaling(&[32, 100, 320, 1000, 2000, 5120], rounds) {
        println!(
            "  {:>7} {:<14} {:<10} {:>14.2} s {:>16.2} s {:>10.2} s",
            p.clients,
            p.workload,
            p.testbed,
            p.client_submission_secs,
            p.server_processing_secs,
            p.total_secs()
        );
    }
}

fn fig8(rounds: usize) {
    header("Figure 8 — time per round vs number of servers (640 clients, DeterLab)");
    println!(
        "  {:>7} {:<14} {:>16} {:>18} {:>12}",
        "servers", "workload", "client submit", "server processing", "total"
    );
    for p in servers_scaling(&[1, 2, 4, 10, 24, 32], rounds) {
        println!(
            "  {:>7} {:<14} {:>14.2} s {:>16.2} s {:>10.2} s",
            p.servers,
            p.workload,
            p.client_submission_secs,
            p.server_processing_secs,
            p.total_secs()
        );
    }
}

fn fig9() {
    header("Figure 9 — full protocol run breakdown (24 servers, 128-byte messages)");
    println!(
        "  {:>7} {:>14} {:>14} {:>16} {:>18}",
        "clients", "key shuffle", "DC-net round", "blame shuffle", "blame evaluation"
    );
    for p in full_protocol_study(&[24, 100, 500, 1000]) {
        println!(
            "  {:>7} {:>12.1} s {:>12.2} s {:>14.1} s {:>16.2} s",
            p.clients,
            p.key_shuffle_secs,
            p.dcnet_round_secs,
            p.blame_shuffle_secs,
            p.blame_evaluation_secs
        );
    }
}

fn fig10() {
    header("Figure 10 — Alexa Top-100 download times (24 Mbps WiFi LAN)");
    println!("(paper: ~10 s / 40 s / 45 s / 55 s per 1 MB of content)");
    println!(
        "  {:<16} {:>14} {:>14} {:>14}",
        "configuration", "mean page", "median page", "secs per MB"
    );
    for r in web_browsing_study() {
        let mut v = r.page_secs.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "  {:<16} {:>12.1} s {:>12.1} s {:>12.1} s",
            r.config,
            mean,
            v[v.len() / 2],
            r.secs_per_mb
        );
    }
}

fn fig11() {
    header("Figure 11 — CDF of page download times");
    let results = web_browsing_study();
    println!(
        "  {:<10} {}",
        "fraction",
        results
            .iter()
            .map(|r| format!("{:>16}", r.config))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for q in [0.25, 0.50, 0.75, 0.90, 1.00] {
        let row: Vec<String> = results
            .iter()
            .map(|r| {
                let mut v = r.page_secs.clone();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let idx = ((v.len() - 1) as f64 * q).round() as usize;
                format!("{:>14.1} s", v[idx])
            })
            .collect();
        println!("  {:<10} {}", format!("{:.0}%", q * 100.0), row.join(" "));
    }
}

fn pipeline(rounds: usize) {
    header("Pipelining (§3.6 / Fig. 8) — round latency & throughput vs clients vs window W");
    println!("(event-driven net simulator; message sizes from the real wire encodings)");
    println!(
        "  {:<22} {:>7} {:>3} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "topology", "clients", "W", "mean lat", "p50", "p90", "p99", "rounds/s", "msgs/s"
    );
    let registry = dissent_metrics::Registry::new();
    for p in pipeline_study_metered(&[100, 320, 1000], &[1, 2, 4, 8], rounds.max(16), &registry) {
        println!(
            "  {:<22} {:>7} {:>3} {:>8.2} s {:>8.2} s {:>8.2} s {:>8.2} s {:>12.2} {:>12.0}",
            p.topology,
            p.clients,
            p.window,
            p.mean_latency_s,
            p.p50_latency_s,
            p.p90_latency_s,
            p.p99_latency_s,
            p.rounds_per_sec,
            p.messages_per_sec
        );
    }
    // Aggregate view straight from the shared instruments: the same
    // histogram/counter cells the node path exports over `--metrics-addr`.
    let hist = registry.latency_histogram(
        "dissent_sim_round_latency_seconds",
        "Simulated end-to-end round latency",
    );
    println!(
        "  sweep aggregate (from dissent_sim_round_latency_seconds): \
         {} rounds, p50 {:.2} s, p90 {:.2} s, p99 {:.2} s",
        hist.count(),
        hist.quantile(0.50),
        hist.quantile(0.90),
        hist.quantile(0.99),
    );
}

fn baseline() {
    header("Ablation — Dissent vs classic peer DC-net vs leader-combined DC-net");
    println!(
        "  {:>7} {:>12} {:>12} {:>12} {:>18} {:>18}",
        "members", "dissent", "peer", "leader", "peer traffic", "dissent traffic"
    );
    for r in baseline_comparison(&[40, 100, 320, 1000, 5000]) {
        println!(
            "  {:>7} {:>10.2} s {:>10.2} s {:>10.2} s {:>15.1} MB {:>15.1} MB",
            r.members,
            r.dissent_secs,
            r.peer_secs,
            r.leader_secs,
            r.peer_traffic_mb,
            r.dissent_traffic_mb
        );
    }
}

fn alpha() {
    header("Ablation — α participation threshold under a 40% DoS (500 clients)");
    println!(
        "  {:>6} {:>18} {:>28}",
        "alpha", "rounds completed", "min participation (completed)"
    );
    for (alpha, completed, min_part) in alpha_ablation(0.4) {
        println!(
            "  {:>6.2} {:>17.0}% {:>28}",
            alpha,
            completed * 100.0,
            min_part
        );
    }
}

fn calibrate() {
    header("Calibration — measured modular exponentiation cost (this machine)");
    for (name, us) in calibrate_modexp() {
        println!("  {:<16} {:>10.0} µs per exponentiation", name, us);
    }
    println!("  (pass the 2048-bit figure to CostModel::with_modexp_us to re-calibrate)");
}
