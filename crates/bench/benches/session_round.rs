//! Round-engine benchmarks: real-cryptography rounds/sec through the
//! lock-step and pipelined drivers, plus simulated round-latency quantiles
//! from the event-driven net driver.
//!
//! The `session_round` group runs the full phase state machine (client
//! ciphertexts, server commit/reveal, certification, finalize) on the fast
//! testing group; the throughput line reports rounds/sec, so the scaling
//! across N clients and window W is visible directly in CI logs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dissent_core::messages::sim_wire_sizes;
use dissent_core::{ClientAction, GroupBuilder, PerEntityRng, PipelinedSession, Session, Workload};
use dissent_crypto::group::Group;
use dissent_net::churn::ChurnModel;
use dissent_net::driver::{simulate, SimConfig};
use dissent_net::topology::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    // Rounds/sec through the real engine: N clients × window W.  Idle
    // steady-state rounds — the DC-net data path without message payloads —
    // so the number isolates the per-round protocol cost.
    let mut g = c.benchmark_group("session_round");
    for &clients in &[8usize, 16] {
        for &window in &[1usize, 2, 4] {
            g.throughput(Throughput::Elements(window as u64));
            g.bench_with_input(
                BenchmarkId::new(format!("clients{clients}"), format!("W{window}")),
                &window,
                |b, &window| {
                    let mut rng = StdRng::seed_from_u64(5);
                    let group = GroupBuilder::new(clients, 2)
                        .with_shuffle_soundness(2)
                        .build();
                    let session = Session::new(&group, &mut rng).expect("session");
                    let mut pipe = PipelinedSession::new(session, window).expect("window");
                    let mut rngs = PerEntityRng::new(1, clients, 2);
                    let batch: Vec<Vec<ClientAction>> = (0..window)
                        .map(|_| vec![ClientAction::Idle; clients])
                        .collect();
                    b.iter(|| pipe.run_batch(&batch, &mut rngs));
                },
            );
        }
    }
    g.finish();

    // Simulated round-latency quantiles (virtual time) from the net driver,
    // printed alongside the wall-clock cost of running the simulation.
    let mut g = c.benchmark_group("sim_round_latency");
    let wire_group = Group::rfc3526_2048();
    let workload = Workload::paper_microblog();
    let testbeds = [
        (
            "deterlab640c32s",
            Topology::deterlab(640, 32),
            ChurnModel::deterlab(),
        ),
        (
            "planetlab560c17s",
            Topology::planetlab(560, 17),
            ChurnModel::planetlab(),
        ),
    ];
    for (label, topology, churn) in testbeds {
        for &window in &[1usize, 4] {
            let total_len = workload.cleartext_len(topology.num_clients);
            let mut cfg = SimConfig::new(topology.clone(), churn.clone(), total_len, window, 24);
            cfg.sizes = sim_wire_sizes(&wire_group, total_len);
            let report = simulate(cfg.clone());
            println!(
                "sim_round_latency/{label}/W{window}: p50 {:.2} s  p90 {:.2} s  p99 {:.2} s  ({:.2} rounds/s, {:.0} msgs/s)",
                report.round_latency.quantile(0.5),
                report.round_latency.quantile(0.9),
                report.round_latency.quantile(0.99),
                report.rounds_per_sec,
                report.messages_per_sec,
            );
            g.bench_with_input(
                BenchmarkId::new(label, format!("W{window}")),
                &cfg,
                |b, cfg| b.iter(|| simulate(cfg.clone())),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
