//! Figure 8: time per round vs number of servers at 640 clients.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dissent_bench::servers_scaling;
use dissent_core::timing::{simulate_round, Scenario, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_servers_scaling");
    g.sample_size(10);
    for &m in &[1usize, 4, 24, 32] {
        g.bench_with_input(BenchmarkId::new("bulk_round", m), &m, |b, &m| {
            let s = Scenario::deterlab(640, m, Workload::paper_bulk());
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| simulate_round(&s, &mut rng))
        });
    }
    g.finish();

    println!("\nFigure 8 data (mean seconds per round, 640 clients):");
    for p in servers_scaling(&[1, 2, 4, 10, 24, 32], 20) {
        println!(
            "  {:>3} servers  {:<14} total {:>7.2} s",
            p.servers,
            p.workload,
            p.total_secs()
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
