//! Figure 9: full protocol run (key shuffle, DC-net round, blame shuffle,
//! blame evaluation) across client counts, plus a real small-scale key
//! shuffle microbenchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dissent_bench::full_protocol_study;
use dissent_crypto::dh::DhKeyPair;
use dissent_crypto::elgamal::ElGamal;
use dissent_crypto::group::Group;
use dissent_shuffle::protocol::{run_shuffle, submit_element, verify_transcript};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_full_protocol");
    g.sample_size(10);
    // Real (small) key shuffles with the fast test group.
    let group = Group::testing_256();
    let elgamal = ElGamal::new(group.clone());
    for &n in &[4usize, 16] {
        g.bench_with_input(BenchmarkId::new("real_key_shuffle", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(3);
            let servers: Vec<DhKeyPair> = (0..3)
                .map(|_| DhKeyPair::generate(&group, &mut rng))
                .collect();
            let keys: Vec<_> = servers.iter().map(|s| s.public().clone()).collect();
            b.iter(|| {
                let subs: Vec<_> = (0..n)
                    .map(|_| {
                        let k = group.exp_base(&group.random_scalar(&mut rng));
                        submit_element(&elgamal, &keys, &k, &mut rng)
                    })
                    .collect();
                run_shuffle(&group, &servers, subs, 4, b"bench", &mut rng).unwrap()
            })
        });
    }
    // Auditing a finished transcript — the client-side verification cost the
    // batched DLEQ path (one folded check per pass) is meant to shrink.
    for &n in &[16usize, 64] {
        g.bench_with_input(
            BenchmarkId::new("verify_key_shuffle_transcript", n),
            &n,
            |b, &n| {
                let mut rng = StdRng::seed_from_u64(5);
                let servers: Vec<DhKeyPair> = (0..3)
                    .map(|_| DhKeyPair::generate(&group, &mut rng))
                    .collect();
                let keys: Vec<_> = servers.iter().map(|s| s.public().clone()).collect();
                let subs: Vec<_> = (0..n)
                    .map(|_| {
                        let k = group.exp_base(&group.random_scalar(&mut rng));
                        submit_element(&elgamal, &keys, &k, &mut rng)
                    })
                    .collect();
                let transcript =
                    run_shuffle(&group, &servers, subs, 4, b"bench", &mut rng).unwrap();
                b.iter(|| verify_transcript(&group, &keys, &transcript, b"bench").is_ok())
            },
        );
    }
    g.finish();

    println!("\nFigure 9 data (seconds per phase, 24 servers):");
    for p in full_protocol_study(&[24, 100, 500, 1000]) {
        println!(
            "  {:>5} clients  key shuffle {:>8.1} s   dc-net {:>6.2} s   blame shuffle {:>9.1} s   blame eval {:>6.2} s",
            p.clients, p.key_shuffle_secs, p.dcnet_round_secs, p.blame_shuffle_secs, p.blame_evaluation_secs
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
