//! Ablation: Dissent's anytrust DC-net vs the classic peer DC-net and a
//! leader-combined variant (the paper's core scalability claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dissent_baseline::peer::{combine, member_ciphertext, PeerSecrets};
use dissent_bench::baseline_comparison;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("peer_dcnet_round");
    g.sample_size(10);
    for &n in &[10usize, 40] {
        g.bench_with_input(BenchmarkId::new("members", n), &n, |b, &n| {
            let secrets = PeerSecrets::generate(n, 1);
            let online: Vec<usize> = (0..n).collect();
            b.iter(|| {
                let cts: Vec<Vec<u8>> = (0..n)
                    .map(|i| member_ciphertext(&secrets, &online, i, 0, None, 1024))
                    .collect();
                combine(1024, &cts)
            })
        });
    }
    g.finish();

    println!("\nBaseline comparison (seconds per round / aggregate MB per round):");
    for r in baseline_comparison(&[40, 320, 1000, 5000]) {
        println!(
            "  {:>5} members  dissent {:>7.2} s  peer {:>8.2} s  leader {:>7.2} s  peer {:>9.1} MB  dissent {:>6.1} MB",
            r.members, r.dissent_secs, r.peer_secs, r.leader_secs, r.peer_traffic_mb, r.dissent_traffic_mb
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
