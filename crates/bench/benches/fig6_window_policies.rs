//! Figure 6 / §5.1: window-closure policy study over a PlanetLab-style trace.

use criterion::{criterion_group, criterion_main, Criterion};
use dissent_bench::window_policy_study;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_window_policies");
    g.sample_size(10);
    g.bench_function("replay_trace_4_policies", |b| {
        b.iter(|| window_policy_study(30))
    });
    g.finish();

    // Print the figure data once so `cargo bench` output doubles as the table.
    let results = window_policy_study(60);
    println!("\nFigure 6 summary (median / p90 exchange completion):");
    for r in results {
        let mut v = r.completion_secs.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "  {:<32} median {:>7.2} s   p90 {:>7.2} s   missed {:>5.2}%",
            r.name,
            v[v.len() / 2],
            v[(v.len() - 1) * 9 / 10],
            r.missed_fraction * 100.0
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
