//! Microbenchmarks of the cryptographic substrate (used to calibrate the
//! simulator's CostModel and to sanity-check the primitives' relative costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dissent_crypto::group::Group;
use dissent_crypto::prng::DetPrng;
use dissent_crypto::schnorr::SigningKeyPair;
use dissent_crypto::sha256::sha256;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);

    let mut g = c.benchmark_group("modexp");
    for group in [Group::testing_256(), Group::modp_512(), Group::modp_1024()] {
        let x = group.random_scalar(&mut rng);
        g.bench_with_input(
            BenchmarkId::from_parameter(group.name().to_string()),
            &group,
            |b, grp| b.iter(|| grp.exp_base(&x)),
        );
    }
    g.finish();

    let mut g = c.benchmark_group("symmetric");
    g.throughput(Throughput::Bytes(64 * 1024));
    g.bench_function("chacha20_pad_64KiB", |b| {
        let mut prng = DetPrng::new(&[7u8; 32], b"bench");
        b.iter(|| prng.bytes(64 * 1024))
    });
    g.bench_function("sha256_64KiB", |b| {
        let data = vec![0xa5u8; 64 * 1024];
        b.iter(|| sha256(&data))
    });
    g.finish();

    let mut g = c.benchmark_group("signatures");
    let group = Group::testing_256();
    let kp = SigningKeyPair::generate(&group, &mut rng);
    let sig = kp.sign(&group, &mut rng, b"bench message");
    g.bench_function("schnorr_sign", |b| {
        b.iter(|| {
            let mut sign_rng = StdRng::seed_from_u64(1);
            kp.sign(&group, &mut sign_rng, b"bench message")
        })
    });
    g.bench_function("schnorr_verify", |b| {
        b.iter(|| dissent_crypto::schnorr::verify(&group, kp.public(), b"bench message", &sig))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
