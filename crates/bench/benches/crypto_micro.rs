//! Microbenchmarks of the cryptographic substrate (used to calibrate the
//! simulator's CostModel and to sanity-check the primitives' relative costs).
//!
//! The `modexp_engine` group is the guardrail for the Montgomery
//! exponentiation engine: it puts the naive square-and-multiply reference
//! (`BigUint::modpow_naive`, a full Knuth-D division per multiplication)
//! side by side with the engine's three paths — general `Group::exp`
//! (sliding-window Montgomery), fixed-base `Group::exp_base` (Lim–Lee comb),
//! and `Group::multi_exp` versus two separate exponentiations — at every
//! parameter-set size, so speedups and regressions are directly visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dissent_crypto::group::Group;
use dissent_crypto::prng::DetPrng;
use dissent_crypto::schnorr::SigningKeyPair;
use dissent_crypto::sha256::sha256;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn all_groups() -> [Group; 4] {
    [
        Group::testing_256(),
        Group::modp_512(),
        Group::modp_1024(),
        Group::rfc3526_2048(),
    ]
}

/// Naive reference vs. the Montgomery engine paths, every modulus size.
fn bench_modexp_engine(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);

    let mut g = c.benchmark_group("modexp_engine");
    for group in all_groups() {
        let name = group.name().to_string();
        let x = group.random_scalar(&mut rng);
        let base = group.exp_base(&group.random_scalar(&mut rng));
        let base_int = base.as_biguint().clone();
        let x_int = x.as_biguint().clone();
        let p = group.modulus().clone();

        g.bench_with_input(BenchmarkId::new("naive_modpow", &name), &group, |b, _| {
            b.iter(|| base_int.modpow_naive(&x_int, &p))
        });
        g.bench_with_input(BenchmarkId::new("mont_exp", &name), &group, |b, grp| {
            b.iter(|| grp.exp(&base, &x))
        });
        g.bench_with_input(
            BenchmarkId::new("mont_exp_base", &name),
            &group,
            |b, grp| b.iter(|| grp.exp_base(&x)),
        );
    }
    g.finish();
}

/// One simultaneous multi-exponentiation vs. two separate exponentiations —
/// the verification-equation pattern of Schnorr and Chaum–Pedersen.
fn bench_multi_exp(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);

    let mut g = c.benchmark_group("multi_exp");
    for group in all_groups() {
        let name = group.name().to_string();
        let a = group.exp_base(&group.random_scalar(&mut rng));
        let b_el = group.exp_base(&group.random_scalar(&mut rng));
        let x = group.random_scalar(&mut rng);
        let y = group.random_scalar(&mut rng);

        g.bench_with_input(
            BenchmarkId::new("two_single_exps", &name),
            &group,
            |bch, grp| bch.iter(|| grp.mul(&grp.exp(&a, &x), &grp.exp(&b_el, &y))),
        );
        g.bench_with_input(
            BenchmarkId::new("one_multi_exp", &name),
            &group,
            |bch, grp| bch.iter(|| grp.multi_exp(&a, &x, &b_el, &y)),
        );
    }
    g.finish();
}

fn bench_symmetric_and_signatures(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);

    let mut g = c.benchmark_group("symmetric");
    g.throughput(Throughput::Bytes(64 * 1024));
    g.bench_function("chacha20_pad_64KiB", |b| {
        let mut prng = DetPrng::new(&[7u8; 32], b"bench");
        b.iter(|| prng.bytes(64 * 1024))
    });
    g.bench_function("sha256_64KiB", |b| {
        let data = vec![0xa5u8; 64 * 1024];
        b.iter(|| sha256(&data))
    });
    g.finish();

    let mut g = c.benchmark_group("signatures");
    let group = Group::testing_256();
    let kp = SigningKeyPair::generate(&group, &mut rng);
    let sig = kp.sign(&group, &mut rng, b"bench message");
    g.bench_function("schnorr_sign", |b| {
        b.iter(|| {
            let mut sign_rng = StdRng::seed_from_u64(1);
            kp.sign(&group, &mut sign_rng, b"bench message")
        })
    });
    g.bench_function("schnorr_verify", |b| {
        b.iter(|| dissent_crypto::schnorr::verify(&group, kp.public(), b"bench message", &sig))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_modexp_engine,
    bench_multi_exp,
    bench_symmetric_and_signatures
);
criterion_main!(benches);
