//! Microbenchmarks of the cryptographic substrate (used to calibrate the
//! simulator's CostModel and to sanity-check the primitives' relative costs).
//!
//! The `modexp_engine` group is the guardrail for the Montgomery
//! exponentiation engine: it puts the naive square-and-multiply reference
//! (`BigUint::modpow_naive`, a full Knuth-D division per multiplication)
//! side by side with the engine's three paths — general `Group::exp`
//! (sliding-window Montgomery), fixed-base `Group::exp_base` (Lim–Lee comb),
//! and `Group::multi_exp` versus two separate exponentiations — at every
//! parameter-set size, so speedups and regressions are directly visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dissent_crypto::chaum_pedersen::{self, DleqBatchItem, DleqProof};
use dissent_crypto::group::{Element, Group, Scalar};
use dissent_crypto::prng::DetPrng;
use dissent_crypto::schnorr::{self, BatchItem, Signature, SigningKeyPair};
use dissent_crypto::sha256::sha256;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn all_groups() -> [Group; 4] {
    [
        Group::testing_256(),
        Group::modp_512(),
        Group::modp_1024(),
        Group::rfc3526_2048(),
    ]
}

/// Naive reference vs. the Montgomery engine paths, every modulus size.
fn bench_modexp_engine(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);

    let mut g = c.benchmark_group("modexp_engine");
    for group in all_groups() {
        let name = group.name().to_string();
        let x = group.random_scalar(&mut rng);
        let base = group.exp_base(&group.random_scalar(&mut rng));
        let base_int = base.as_biguint().clone();
        let x_int = x.as_biguint().clone();
        let p = group.modulus().clone();

        g.bench_with_input(BenchmarkId::new("naive_modpow", &name), &group, |b, _| {
            b.iter(|| base_int.modpow_naive(&x_int, &p))
        });
        g.bench_with_input(BenchmarkId::new("mont_exp", &name), &group, |b, grp| {
            b.iter(|| grp.exp(&base, &x))
        });
        g.bench_with_input(
            BenchmarkId::new("mont_exp_base", &name),
            &group,
            |b, grp| b.iter(|| grp.exp_base(&x)),
        );
    }
    g.finish();
}

/// One simultaneous multi-exponentiation vs. two separate exponentiations —
/// the verification-equation pattern of Schnorr and Chaum–Pedersen.
fn bench_multi_exp(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);

    let mut g = c.benchmark_group("multi_exp");
    for group in all_groups() {
        let name = group.name().to_string();
        let a = group.exp_base(&group.random_scalar(&mut rng));
        let b_el = group.exp_base(&group.random_scalar(&mut rng));
        let x = group.random_scalar(&mut rng);
        let y = group.random_scalar(&mut rng);

        g.bench_with_input(
            BenchmarkId::new("two_single_exps", &name),
            &group,
            |bch, grp| bch.iter(|| grp.mul(&grp.exp(&a, &x), &grp.exp(&b_el, &y))),
        );
        g.bench_with_input(
            BenchmarkId::new("one_multi_exp", &name),
            &group,
            |bch, grp| bch.iter(|| grp.multi_exp(&a, &x, &b_el, &y)),
        );
    }
    g.finish();
}

/// One n-way multi-exponentiation vs. n separate exponentiations — the
/// scaling primitive behind batch verification.  At n = 64 the dispatcher's
/// Straus path runs; `pippenger` is pinned explicitly for comparison.
fn bench_multi_exp_n(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(17);
    let group = Group::testing_256();
    let mut g = c.benchmark_group("multi_exp_n");
    for &n in &[8usize, 64] {
        let bases: Vec<Element> = (0..n)
            .map(|_| group.exp_base(&group.random_scalar(&mut rng)))
            .collect();
        let exps: Vec<Scalar> = (0..n).map(|_| group.random_scalar(&mut rng)).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("n_single_exps", n), &group, |bch, grp| {
            bch.iter(|| {
                bases
                    .iter()
                    .zip(&exps)
                    .fold(grp.identity(), |acc, (b, e)| grp.mul(&acc, &grp.exp(b, e)))
            })
        });
        g.bench_with_input(
            BenchmarkId::new("one_multi_exp_n", n),
            &group,
            |bch, grp| {
                let pairs: Vec<(&Element, &Scalar)> = bases.iter().zip(exps.iter()).collect();
                bch.iter(|| grp.multi_exp_n(&pairs))
            },
        );
        g.bench_with_input(BenchmarkId::new("pippenger_c6", n), &group, |bch, grp| {
            use dissent_crypto::montgomery::MontgomeryCtx;
            let ctx = MontgomeryCtx::new(grp.modulus()).unwrap();
            let base_ints: Vec<_> = bases.iter().map(|b| b.as_biguint().clone()).collect();
            let exp_ints: Vec<_> = exps.iter().map(|e| e.as_biguint().clone()).collect();
            let base_refs: Vec<_> = base_ints.iter().collect();
            let exp_refs: Vec<_> = exp_ints.iter().collect();
            bch.iter(|| ctx.pow_n_pippenger(&base_refs, &exp_refs, 6))
        });
    }
    g.finish();
}

/// Batched vs. sequential proof verification — the server-side cost the
/// paper's client/server split is meant to amortize.  The `schnorr_*` pair
/// at k = 64 is the acceptance guardrail for the batch-verification layer;
/// the `dleq_*` pair mirrors a 64-entry shuffle pass (shared generator and
/// server key, per-entry `c1`/share bases).
fn bench_batch_verify(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(19);
    let mut g = c.benchmark_group("batch_verify");
    // At 256 bits the fixed hashing/screening costs dilute the ratio; at
    // 2048 bits (production fidelity) exponentiation dominates and the
    // amortization is near its asymptotic win.
    let cases: [(Group, &[usize]); 2] = [
        (Group::testing_256(), &[16usize, 64]),
        (Group::rfc3526_2048(), &[16usize]),
    ];
    for (group, ks) in cases {
        bench_batch_verify_for(&mut g, &group, ks, &mut rng);
    }
    g.finish();
}

fn bench_batch_verify_for(
    g: &mut criterion::BenchmarkGroup<'_>,
    group: &Group,
    ks: &[usize],
    rng: &mut StdRng,
) {
    let suffix = group.name().to_string();
    for &k in ks {
        let keys: Vec<SigningKeyPair> = (0..k)
            .map(|_| SigningKeyPair::generate(group, rng))
            .collect();
        let messages: Vec<Vec<u8>> = (0..k).map(|i| format!("msg {i}").into_bytes()).collect();
        let sigs: Vec<Signature> = keys
            .iter()
            .zip(&messages)
            .map(|(kp, m)| kp.sign(group, rng, m))
            .collect();
        g.throughput(Throughput::Elements(k as u64));
        g.bench_with_input(
            BenchmarkId::new(format!("schnorr_sequential_{suffix}"), k),
            group,
            |bch, grp| {
                bch.iter(|| {
                    keys.iter()
                        .zip(&messages)
                        .zip(&sigs)
                        .all(|((kp, m), s)| schnorr::verify(grp, kp.public(), m, s))
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new(format!("schnorr_batch_{suffix}"), k),
            group,
            |bch, grp| {
                let items: Vec<BatchItem> = keys
                    .iter()
                    .zip(&messages)
                    .zip(&sigs)
                    .map(|((kp, m), s)| BatchItem {
                        public: kp.public(),
                        message: m,
                        signature: s,
                    })
                    .collect();
                bch.iter(|| schnorr::batch_verify(grp, &items))
            },
        );

        // DLEQ with the shuffle-pass shape: g and the server key shared.
        let gen = group.generator();
        let server_x = group.random_scalar(rng);
        let server_pk = group.exp_base(&server_x);
        let c1s: Vec<Element> = (0..k)
            .map(|_| group.exp_base(&group.random_scalar(rng)))
            .collect();
        let shares: Vec<Element> = c1s.iter().map(|c1| group.exp(c1, &server_x)).collect();
        let contexts: Vec<Vec<u8>> = (0..k).map(|i| format!("entry {i}").into_bytes()).collect();
        let proofs: Vec<DleqProof> = c1s
            .iter()
            .zip(&contexts)
            .map(|(c1, ctx)| chaum_pedersen::prove(group, rng, &gen, c1, &server_x, ctx))
            .collect();
        g.bench_with_input(
            BenchmarkId::new(format!("dleq_sequential_{suffix}"), k),
            group,
            |bch, grp| {
                bch.iter(|| {
                    (0..k).all(|i| {
                        chaum_pedersen::verify(
                            grp,
                            &gen,
                            &c1s[i],
                            &server_pk,
                            &shares[i],
                            &proofs[i],
                            &contexts[i],
                        )
                    })
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new(format!("dleq_batch_{suffix}"), k),
            group,
            |bch, grp| {
                let items: Vec<DleqBatchItem> = (0..k)
                    .map(|i| DleqBatchItem {
                        g: &gen,
                        h: &c1s[i],
                        a: &server_pk,
                        b: &shares[i],
                        proof: &proofs[i],
                        context: &contexts[i],
                    })
                    .collect();
                bch.iter(|| chaum_pedersen::batch_verify(grp, &items))
            },
        );
    }
}

fn bench_symmetric_and_signatures(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);

    let mut g = c.benchmark_group("symmetric");
    g.throughput(Throughput::Bytes(64 * 1024));
    g.bench_function("chacha20_pad_64KiB", |b| {
        let mut prng = DetPrng::new(&[7u8; 32], b"bench");
        b.iter(|| prng.bytes(64 * 1024))
    });
    g.bench_function("sha256_64KiB", |b| {
        let data = vec![0xa5u8; 64 * 1024];
        b.iter(|| sha256(&data))
    });
    g.finish();

    let mut g = c.benchmark_group("signatures");
    let group = Group::testing_256();
    let kp = SigningKeyPair::generate(&group, &mut rng);
    let sig = kp.sign(&group, &mut rng, b"bench message");
    g.bench_function("schnorr_sign", |b| {
        b.iter(|| {
            let mut sign_rng = StdRng::seed_from_u64(1);
            kp.sign(&group, &mut sign_rng, b"bench message")
        })
    });
    g.bench_function("schnorr_verify", |b| {
        b.iter(|| dissent_crypto::schnorr::verify(&group, kp.public(), b"bench message", &sig))
    });
    g.finish();
}

/// Scalar block vs portable 4-way vs the runtime-dispatched SIMD stride,
/// at the DC-net's interesting sizes (one block, a microblog-ish 4 KiB, the
/// paper's 128 KiB bulk slot).  The dispatched entry is labelled with the
/// backend the CPU actually selected (`avx2`/`sse2`/`portable4`), so CI
/// logs show which kernel the ≥2× acceptance bar was measured on.
fn bench_chacha_throughput(c: &mut Criterion) {
    use dissent_crypto::chacha::{
        chacha20_block, chacha20_blocks4_portable, wide_backend_name, ChaCha20, BLOCK_LEN, WIDE_LEN,
    };
    let key = [7u8; 32];
    let nonce = [3u8; 12];
    let mut g = c.benchmark_group("chacha_throughput");
    for &(name, len) in &[("64B", 64usize), ("4KiB", 4096), ("128KiB", 128 * 1024)] {
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_function(BenchmarkId::new("scalar_block", name), |b| {
            let mut buf = vec![0u8; len];
            b.iter(|| {
                let mut ctr = 0u32;
                for chunk in buf.chunks_mut(BLOCK_LEN) {
                    let block = chacha20_block(&key, &nonce, ctr);
                    chunk.copy_from_slice(&block[..chunk.len()]);
                    ctr = ctr.wrapping_add(1);
                }
            })
        });
        if len >= WIDE_LEN {
            g.bench_function(BenchmarkId::new("wide4_portable", name), |b| {
                let mut buf = vec![0u8; len];
                b.iter(|| {
                    let mut ctr = 0u32;
                    for chunk in buf.chunks_mut(WIDE_LEN) {
                        let mut stride = [0u8; WIDE_LEN];
                        chacha20_blocks4_portable(&key, &nonce, ctr, &mut stride);
                        chunk.copy_from_slice(&stride[..chunk.len()]);
                        ctr = ctr.wrapping_add(4);
                    }
                })
            });
        }
        g.bench_function(
            BenchmarkId::new(format!("fill_{}", wide_backend_name()), name),
            |b| {
                let mut stream = ChaCha20::new(&key, &nonce);
                let mut buf = vec![0u8; len];
                b.iter(|| stream.fill(&mut buf))
            },
        );
    }
    g.finish();
}

/// Shuffle proving, serial vs pool-chunked shadow generation (transcripts
/// are bit-identical — see `dissent-shuffle/tests/parallel_prove.rs`; on a
/// 1-core box the two entries should coincide, on multi-core the parallel
/// one shows the shadow fan-out).
fn bench_shuffle_prove(c: &mut Criterion) {
    use dissent_crypto::dh::DhKeyPair;
    use dissent_crypto::elgamal::ElGamal;
    use dissent_shuffle::proof::{prove, prove_chunked, shuffle_and_rerandomize};
    const SOUNDNESS: usize = 8;
    let mut g = c.benchmark_group("shuffle_prove");
    g.sample_size(10);
    for &n in &[16usize, 64] {
        let group = Group::testing_256();
        let eg = ElGamal::new(group.clone());
        let mut rng = StdRng::seed_from_u64(11);
        let key = DhKeyPair::generate(&group, &mut rng);
        let input: Vec<_> = (0..n)
            .map(|_| {
                let m = group.exp_base(&group.random_scalar(&mut rng));
                eg.encrypt(&mut rng, key.public(), &m)
            })
            .collect();
        let (output, witness) = shuffle_and_rerandomize(&eg, key.public(), &input, &mut rng);
        g.bench_function(BenchmarkId::new("serial", n), |b| {
            b.iter(|| {
                let mut r = StdRng::seed_from_u64(5);
                prove_chunked(
                    &eg,
                    key.public(),
                    &input,
                    &output,
                    &witness,
                    SOUNDNESS,
                    b"bench",
                    &mut r,
                    SOUNDNESS,
                )
            })
        });
        g.bench_function(BenchmarkId::new("parallel", n), |b| {
            b.iter(|| {
                let mut r = StdRng::seed_from_u64(5);
                prove(
                    &eg,
                    key.public(),
                    &input,
                    &output,
                    &witness,
                    SOUNDNESS,
                    b"bench",
                    &mut r,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_modexp_engine,
    bench_multi_exp,
    bench_multi_exp_n,
    bench_batch_verify,
    bench_symmetric_and_signatures,
    bench_chacha_throughput,
    bench_shuffle_prove
);
criterion_main!(benches);
