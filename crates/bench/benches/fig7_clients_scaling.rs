//! Figure 7: time per round vs number of clients.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dissent_bench::clients_scaling;
use dissent_core::timing::{simulate_round, Scenario, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_clients_scaling");
    g.sample_size(10);
    for &n in &[32usize, 320, 1000, 5120] {
        g.bench_with_input(BenchmarkId::new("microblog_round", n), &n, |b, &n| {
            let s = Scenario::deterlab(n, 32, Workload::paper_microblog());
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| simulate_round(&s, &mut rng))
        });
    }
    g.finish();

    println!("\nFigure 7 data (mean seconds per round):");
    for p in clients_scaling(&[32, 100, 320, 1000, 5120], 20) {
        println!(
            "  {:>5} clients  {:<14} {:<10} total {:>7.2} s",
            p.clients,
            p.workload,
            p.testbed,
            p.total_secs()
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
