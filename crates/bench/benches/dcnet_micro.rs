//! Microbenchmarks of the DC-net data path: client ciphertext generation and
//! server pad accumulation, across message sizes and server counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dissent_dcnet::client::{ClientDcnet, Submission};
use dissent_dcnet::pad::pad;
use dissent_dcnet::slots::{SlotConfig, SlotPayload, SlotSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("client_ciphertext");
    for &servers in &[4usize, 16, 32] {
        let secrets: Vec<[u8; 32]> = (0..servers)
            .map(|j| {
                let mut s = [0u8; 32];
                s[0] = j as u8;
                s
            })
            .collect();
        let schedule = SlotSchedule::new_all_open(16, SlotConfig::default());
        let layout = schedule.layout();
        g.throughput(Throughput::Bytes(layout.total_len as u64));
        g.bench_with_input(BenchmarkId::new("servers", servers), &servers, |b, _| {
            let client = ClientDcnet::new(3, secrets.clone());
            let mut rng = StdRng::seed_from_u64(9);
            let config = SlotConfig::default();
            b.iter(|| {
                client.ciphertext(
                    &mut rng,
                    &layout,
                    &Submission::message(SlotPayload::message(&[0x42u8; 128], &config)),
                )
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("server_pads");
    for &clients in &[100usize, 1000] {
        let secrets: BTreeMap<u32, [u8; 32]> = (0..clients as u32)
            .map(|i| {
                let mut s = [0u8; 32];
                s[..4].copy_from_slice(&i.to_be_bytes());
                (i, s)
            })
            .collect();
        let len = 2048;
        g.throughput(Throughput::Bytes((clients * len) as u64));
        g.bench_with_input(BenchmarkId::new("clients", clients), &clients, |b, _| {
            b.iter(|| {
                let composite: Vec<u32> = (0..clients as u32).collect();
                dissent_dcnet::server::server_ciphertext(
                    1,
                    len,
                    &composite,
                    &secrets,
                    &BTreeMap::new(),
                )
            })
        });
    }
    g.finish();

    c.bench_function("pad_expand_128KiB", |b| {
        let secret = [1u8; 32];
        b.iter(|| pad(&secret, 3, 128 * 1024))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
