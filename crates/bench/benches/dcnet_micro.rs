//! Microbenchmarks of the DC-net data path: client ciphertext generation and
//! server pad accumulation, across message sizes and server counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dissent_dcnet::client::{ClientDcnet, Submission};
use dissent_dcnet::pad::{
    accumulate_pads_sharded, pad, pad_bit, pad_bit_reference, pad_xor_into, xor_into,
};
use dissent_dcnet::slots::{SlotConfig, SlotPayload, SlotSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("client_ciphertext");
    for &servers in &[4usize, 16, 32] {
        let secrets: Vec<[u8; 32]> = (0..servers)
            .map(|j| {
                let mut s = [0u8; 32];
                s[0] = j as u8;
                s
            })
            .collect();
        let schedule = SlotSchedule::new_all_open(16, SlotConfig::default());
        let layout = schedule.layout();
        g.throughput(Throughput::Bytes(layout.total_len as u64));
        g.bench_with_input(BenchmarkId::new("servers", servers), &servers, |b, _| {
            let client = ClientDcnet::new(3, secrets.clone());
            let mut rng = StdRng::seed_from_u64(9);
            let config = SlotConfig::default();
            b.iter(|| {
                client.ciphertext(
                    &mut rng,
                    &layout,
                    &Submission::message(SlotPayload::message(&[0x42u8; 128], &config)),
                )
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("server_pads");
    for &clients in &[100usize, 1000] {
        let secrets: BTreeMap<u32, [u8; 32]> = (0..clients as u32)
            .map(|i| {
                let mut s = [0u8; 32];
                s[..4].copy_from_slice(&i.to_be_bytes());
                (i, s)
            })
            .collect();
        let len = 2048;
        g.throughput(Throughput::Bytes((clients * len) as u64));
        g.bench_with_input(BenchmarkId::new("clients", clients), &clients, |b, _| {
            b.iter(|| {
                let composite: Vec<u32> = (0..clients as u32).collect();
                dissent_dcnet::server::server_ciphertext(
                    1,
                    len,
                    &composite,
                    &secrets,
                    &BTreeMap::<u32, Vec<u8>>::new(),
                )
            })
        });
    }
    g.finish();

    // Pad expansion rides the multi-block ChaCha20 engine: the entry is
    // labelled with the dispatched backend (avx2/sse2/portable4) so CI logs
    // show which kernel produced the number.  `DISSENT_CHACHA_FORCE_SCALAR=1`
    // re-runs it on the portable kernel for an in-log comparison.
    c.bench_function(
        &format!(
            "pad_expand_128KiB_{}",
            dissent_crypto::chacha::wide_backend_name()
        ),
        |b| {
            let secret = [1u8; 32];
            b.iter(|| pad(&secret, 3, 128 * 1024))
        },
    );

    // Serial generate-then-XOR vs the fused zero-allocation engine vs the
    // sharded parallel accumulator, over the paper's bulk slot size.  The
    // parallel entry reports per-pool-size behaviour (on a 1-core box it
    // degenerates to the fused serial path).
    let mut g = c.benchmark_group("pad_xor");
    let len = 128 * 1024;
    let n_secrets = 16;
    let secrets: Vec<[u8; 32]> = (0..n_secrets)
        .map(|i| {
            let mut s = [0u8; 32];
            s[0] = i as u8;
            s
        })
        .collect();
    g.throughput(Throughput::Bytes((n_secrets * len) as u64));
    g.bench_function("serial_alloc_128KiBx16", |b| {
        b.iter(|| {
            let mut acc = vec![0u8; len];
            for s in &secrets {
                let p = pad(s, 3, len);
                xor_into(&mut acc, &p);
            }
            acc
        })
    });
    g.bench_function("fused_128KiBx16", |b| {
        b.iter(|| {
            let mut acc = vec![0u8; len];
            for s in &secrets {
                pad_xor_into(s, 3, &mut acc);
            }
            acc
        })
    });
    g.bench_function("fused_parallel_128KiBx16", |b| {
        let shards = rayon::current_num_threads();
        b.iter(|| {
            let mut acc = vec![0u8; len];
            accumulate_pads_sharded(&mut acc, &secrets, 3, shards);
            acc
        })
    });
    g.finish();

    // The server hot path at the paper's N=1000 microblog scale: serial
    // (1 shard) vs parallel (pool-sized shards); outputs are byte-identical.
    let mut g = c.benchmark_group("server_ciphertext");
    let clients = 1000;
    let len = 2048;
    let secrets: Vec<[u8; 32]> = (0..clients)
        .map(|i| {
            let mut s = [0u8; 32];
            s[..4].copy_from_slice(&(i as u32).to_be_bytes());
            s
        })
        .collect();
    g.throughput(Throughput::Bytes((clients * len) as u64));
    g.bench_function(BenchmarkId::new("serial", clients), |b| {
        b.iter(|| {
            let mut acc = vec![0u8; len];
            accumulate_pads_sharded(&mut acc, &secrets, 1, 1);
            acc
        })
    });
    g.bench_function(BenchmarkId::new("parallel", clients), |b| {
        let shards = rayon::current_num_threads();
        b.iter(|| {
            let mut acc = vec![0u8; len];
            accumulate_pads_sharded(&mut acc, &secrets, 1, shards);
            acc
        })
    });
    g.finish();

    // Accusation bit reveals: the seeked path must cost the same for a
    // 192 B microblog slot and a 128 KiB bulk slot (the acceptance bar is
    // within 2×); the prefix-regenerating reference shows the old O(L)
    // behaviour for contrast.
    let mut g = c.benchmark_group("pad_bit_reveal");
    let secret = [7u8; 32];
    for &(name, slot_len) in &[("192B", 192usize), ("128KiB", 128 * 1024)] {
        let last_bit = slot_len * 8 - 1;
        g.bench_function(BenchmarkId::new("seeked", name), |b| {
            b.iter(|| pad_bit(&secret, 9, slot_len, last_bit))
        });
    }
    g.bench_function(BenchmarkId::new("reference", "128KiB"), |b| {
        let slot_len = 128 * 1024;
        b.iter(|| pad_bit_reference(&secret, 9, slot_len, slot_len * 8 - 1))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
