//! Figures 10 & 11: Alexa Top-100 downloads under the four configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use dissent_bench::web_browsing_study;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_web_download");
    g.sample_size(10);
    g.bench_function("download_corpus_all_configs", |b| {
        b.iter(web_browsing_study)
    });
    g.finish();

    println!("\nFigure 10/11 data:");
    for r in web_browsing_study() {
        let mut v = r.page_secs.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "  {:<16} mean {:>6.1} s   p50 {:>6.1} s   p90 {:>6.1} s   {:>5.1} s/MB",
            r.config,
            mean,
            v[v.len() / 2],
            v[(v.len() - 1) * 9 / 10],
            r.secs_per_mb
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
