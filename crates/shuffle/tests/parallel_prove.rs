//! Parallel-prover equivalence and determinism suite.
//!
//! The shuffle prover's shadow generation runs on the thread pool, but its
//! transcript must be a pure function of the caller's RNG state: every
//! shadow round draws from its own domain-separated child RNG, so worker
//! count and chunk size cannot influence a single byte.  This file pins
//! that contract — parallel == serial bit-for-bit for every chunking (the
//! in-process stand-in for `RAYON_NUM_THREADS` 1..4, which is fixed per
//! process; the pool here is forced to 4 workers so the parallel path
//! really runs multi-threaded) — and proves the batched comb
//! re-randomization path equal to the old per-entry `exp` path on all four
//! parameter sets.

use dissent_crypto::dh::DhKeyPair;
use dissent_crypto::elgamal::{Ciphertext, ElGamal};
use dissent_crypto::group::{Element, Group};
use dissent_shuffle::proof::{prove, prove_chunked, shuffle_and_rerandomize, verify, ShuffleProof};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn force_multithreaded_pool() {
    // This file is its own test binary (own process), so the lazily-created
    // global pool really gets 4 workers even on a 1-core CI box.
    std::env::set_var("RAYON_NUM_THREADS", "4");
}

const SOUNDNESS: usize = 10;

fn setup(n: usize, seed: u64) -> (ElGamal, Element, Vec<Ciphertext>, StdRng) {
    let group = Group::testing_256();
    let eg = ElGamal::new(group.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let key = DhKeyPair::generate(&group, &mut rng);
    let input: Vec<Ciphertext> = (0..n)
        .map(|_| {
            let m = group.exp_base(&group.random_scalar(&mut rng));
            eg.encrypt(&mut rng, key.public(), &m)
        })
        .collect();
    (eg, key.public().clone(), input, rng)
}

/// One full prove run at a given chunk size, from a fixed RNG seed.
fn proof_at_chunk(chunk: Option<usize>, seed: u64) -> (ShuffleProof, bool) {
    let (eg, key, input, mut rng) = setup(8, seed);
    let (output, witness) = shuffle_and_rerandomize(&eg, &key, &input, &mut rng);
    let proof = match chunk {
        Some(c) => prove_chunked(
            &eg, &key, &input, &output, &witness, SOUNDNESS, b"par", &mut rng, c,
        ),
        None => prove(
            &eg, &key, &input, &output, &witness, SOUNDNESS, b"par", &mut rng,
        ),
    };
    let ok = verify(&eg, &key, &input, &output, &proof, b"par").is_ok();
    (proof, ok)
}

#[test]
fn parallel_prove_is_bit_identical_to_serial_for_all_chunkings() {
    force_multithreaded_pool();
    // chunk >= soundness is the serial path; 1..4 emulate 1..4-worker
    // shard shapes on the 4-thread pool.
    let (serial, serial_ok) = proof_at_chunk(Some(SOUNDNESS), 0xC0FFEE);
    assert!(serial_ok, "serial proof must verify");
    for chunk in 1..=4usize {
        let (parallel, ok) = proof_at_chunk(Some(chunk), 0xC0FFEE);
        assert!(ok, "chunk {chunk} proof must verify");
        assert_eq!(parallel, serial, "chunk {chunk} transcript differs");
    }
    // The production entry point (pool-derived chunk size) matches too.
    let (auto, ok) = proof_at_chunk(None, 0xC0FFEE);
    assert!(ok);
    assert_eq!(auto, serial);
}

#[test]
fn prove_is_deterministic_for_a_fixed_rng_seed() {
    force_multithreaded_pool();
    let (a, _) = proof_at_chunk(None, 7);
    let (b, _) = proof_at_chunk(None, 7);
    assert_eq!(a, b);
    let (c, _) = proof_at_chunk(None, 8);
    assert_ne!(a, c, "different RNG seeds must give different shadows");
}

#[test]
fn parallel_proofs_survive_the_full_tamper_checks() {
    force_multithreaded_pool();
    // A parallel-proved transcript is still sound: tampering with the
    // output after proving must be rejected.
    let (eg, key, input, mut rng) = setup(6, 42);
    let (mut output, witness) = shuffle_and_rerandomize(&eg, &key, &input, &mut rng);
    let proof = prove_chunked(
        &eg, &key, &input, &output, &witness, SOUNDNESS, b"t", &mut rng, 2,
    );
    assert!(verify(&eg, &key, &input, &output, &proof, b"t").is_ok());
    let m = eg.group().exp_base(&eg.group().random_scalar(&mut rng));
    output[1] = eg.encrypt(&mut rng, &key, &m);
    assert!(verify(&eg, &key, &input, &output, &proof, b"t").is_err());
}

/// All four parameter sets, sized so the 2048-bit group stays affordable.
fn all_groups() -> Vec<(Group, usize)> {
    vec![
        (Group::testing_256(), 6),
        (Group::modp_512(), 4),
        (Group::modp_1024(), 3),
        (Group::rfc3526_2048(), 2),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn batched_rerandomization_equals_per_entry_exp_path(seed in any::<u64>()) {
        force_multithreaded_pool();
        for (group, n) in all_groups() {
            let eg = ElGamal::new(group.clone());
            let mut rng = StdRng::seed_from_u64(seed);
            let key = DhKeyPair::generate(&group, &mut rng);
            let cts: Vec<Ciphertext> = (0..n)
                .map(|_| {
                    let m = group.exp_base(&group.random_scalar(&mut rng));
                    eg.encrypt(&mut rng, key.public(), &m)
                })
                .collect();
            let rs: Vec<_> = (0..n).map(|_| group.random_scalar(&mut rng)).collect();
            // Old path: per-entry exp (general exponentiation, the key is
            // deliberately NOT registered in this fresh Group handle).
            let expected: Vec<Ciphertext> = cts
                .iter()
                .zip(&rs)
                .map(|(ct, r)| eg.rerandomize_with(key.public(), ct, r))
                .collect();
            let refs: Vec<&Ciphertext> = cts.iter().collect();
            let batched = eg.rerandomize_batch(key.public(), &refs, &rs);
            prop_assert_eq!(batched, expected);
            // And with the base registered (the prover's configuration).
            group.register_fixed_base(key.public());
            let registered = eg.rerandomize_batch(key.public(), &refs, &rs);
            let expected_reg: Vec<Ciphertext> = cts
                .iter()
                .zip(&rs)
                .map(|(ct, r)| eg.rerandomize_with(key.public(), ct, r))
                .collect();
            prop_assert_eq!(registered, expected_reg);
        }
    }
}
