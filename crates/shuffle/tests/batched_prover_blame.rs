//! Adversarial blame-attribution suite for the batched DLEQ prover.
//!
//! `perform_pass` now proves all of a pass's decryption shares through
//! `chaum_pedersen::prove_batch`.  Batching the prover must not blur the
//! accountability path: given a transcript whose decryption half is
//! corrupted at exactly one entry — proof scalar, commitment element,
//! claimed share, stripped ciphertext, cross-wired proofs, or a non-member
//! element that only the membership screen can catch — `verify_pass` must
//! reject with the *exact* entry index, at every batch position, across
//! all four parameter sets.  (Mirror of `dissent-crypto`'s
//! `proptest_batch_verify`, lifted from raw DLEQ batches to full pass
//! transcripts produced by the batched prover.)

use dissent_crypto::bigint::BigUint;
use dissent_crypto::dh::DhKeyPair;
use dissent_crypto::elgamal::{Ciphertext, ElGamal};
use dissent_crypto::group::{Element, Group, Scalar};
use dissent_shuffle::pass::PassError;
use dissent_shuffle::{perform_pass, verify_pass, PassTranscript};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// All four parameter sets, smallest to largest.
fn groups() -> [Group; 4] {
    [
        Group::testing_256(),
        Group::modp_512(),
        Group::modp_1024(),
        Group::rfc3526_2048(),
    ]
}

/// Shadow rounds for the shuffle half — the minimum that still produces a
/// verifiable argument; the shuffle half is not under test here.
const SOUNDNESS: usize = 2;
const ENTRIES: usize = 3;
const CONTEXT: &[u8] = b"batched-prover-blame";

struct Fixture {
    elgamal: ElGamal,
    server_keys: Vec<Element>,
    input: Vec<Ciphertext>,
    transcript: PassTranscript,
}

fn fixture(group: &Group) -> Fixture {
    let elgamal = ElGamal::new(group.clone());
    let mut rng = StdRng::seed_from_u64(0xB1A3E);
    let servers: Vec<DhKeyPair> = (0..2)
        .map(|_| DhKeyPair::generate(group, &mut rng))
        .collect();
    let server_keys: Vec<Element> = servers.iter().map(|s| s.public().clone()).collect();
    let combined = elgamal.combine_keys(&server_keys);
    let input: Vec<Ciphertext> = (0..ENTRIES)
        .map(|_| {
            let m = group.exp_base(&group.random_scalar(&mut rng));
            elgamal.encrypt(&mut rng, &combined, &m)
        })
        .collect();
    let transcript = perform_pass(
        &elgamal,
        &server_keys,
        0,
        &servers[0],
        &input,
        SOUNDNESS,
        CONTEXT,
        &mut rng,
    );
    Fixture {
        elgamal,
        server_keys,
        input,
        transcript,
    }
}

/// Every way to corrupt exactly one entry of the decryption half, paired
/// with the error `verify_pass` must name for it.
const CORRUPTIONS: usize = 8;

/// Apply corruption `which` at `target`; returns the exact error expected.
fn corrupt(group: &Group, t: &mut PassTranscript, target: usize, which: usize) -> PassError {
    let g = group.generator();
    match which {
        // Proof scalar: response bumped by one.
        0 => {
            t.decryption_proofs[target].response =
                group.scalar_add(&t.decryption_proofs[target].response, &Scalar::one());
            PassError::DecryptionProof { entry: target }
        }
        // First commitment element.
        1 => {
            t.decryption_proofs[target].t1 = group.mul(&t.decryption_proofs[target].t1, &g);
            PassError::DecryptionProof { entry: target }
        }
        // Second commitment element.
        2 => {
            t.decryption_proofs[target].t2 = group.mul(&t.decryption_proofs[target].t2, &g);
            PassError::DecryptionProof { entry: target }
        }
        // The claimed share (the DLEQ statement image b): the proof check
        // runs before the stripped-entry check, so blame lands on the proof.
        3 => {
            t.decryption_shares[target] = group.mul(&t.decryption_shares[target], &g);
            PassError::DecryptionProof { entry: target }
        }
        // The stripped ciphertext itself, proofs left intact.
        4 => {
            t.stripped[target].c2 = group.mul(&t.stripped[target].c2, &g);
            PassError::StrippedEntry { entry: target }
        }
        // Cross-wiring: neighbouring proofs swapped — both entries fail and
        // the verifier must blame the lower index, matching a serial scan.
        5 => {
            let other = (target + 1) % ENTRIES;
            t.decryption_proofs.swap(target, other);
            PassError::DecryptionProof {
                entry: target.min(other),
            }
        }
        // Non-member commitment (order-2q element): only the membership
        // screen catches this, and it must still name the entry.
        6 => {
            let minus_one = Element::from_biguint_unchecked(group.modulus().sub(&BigUint::one()));
            t.decryption_proofs[target].t1 = group.mul(&t.decryption_proofs[target].t1, &minus_one);
            PassError::DecryptionProof { entry: target }
        }
        // Non-member share.
        7 => {
            let minus_one = Element::from_biguint_unchecked(group.modulus().sub(&BigUint::one()));
            t.decryption_shares[target] = group.mul(&t.decryption_shares[target], &minus_one);
            PassError::DecryptionProof { entry: target }
        }
        _ => unreachable!(),
    }
}

#[test]
fn single_corruption_blames_the_exact_entry_across_all_groups() {
    for group in groups() {
        let f = fixture(&group);
        assert_eq!(
            verify_pass(&f.elgamal, &f.server_keys, &f.input, &f.transcript, CONTEXT),
            Ok(()),
            "valid batched-prover transcript rejected ({})",
            group.name()
        );
        for target in 0..ENTRIES {
            for which in 0..CORRUPTIONS {
                let mut t = f.transcript.clone();
                let expected = corrupt(&group, &mut t, target, which);
                assert_eq!(
                    verify_pass(&f.elgamal, &f.server_keys, &f.input, &t, CONTEXT),
                    Err(expected),
                    "corruption {which} at entry {target} ({})",
                    group.name()
                );
            }
        }
    }
}
