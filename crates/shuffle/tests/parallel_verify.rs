//! `verify_pass` blame attribution under a multi-threaded pool.
//!
//! The per-entry DLEQ fallback and the stripped-entry consistency scan run
//! sharded across the pool for passes with ≥16 entries; the reported entry
//! index must be exactly the one a serial scan names (the minimum failing
//! index), for any thread count.  This file is its own test binary, so the
//! pool is forced to 4 workers even on a 1-core box.

use dissent_crypto::dh::DhKeyPair;
use dissent_crypto::elgamal::{Ciphertext, ElGamal};
use dissent_crypto::group::{Element, Group, Scalar};
use dissent_shuffle::pass::{perform_pass, verify_pass, PassError, PassTranscript};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SOUNDNESS: usize = 8;
/// Enough entries to trigger the sharded per-entry scans (threshold 16).
const ENTRIES: usize = 24;

fn force_multithreaded_pool() {
    std::env::set_var("RAYON_NUM_THREADS", "4");
}

struct Fixture {
    elgamal: ElGamal,
    server_keys: Vec<Element>,
    input: Vec<Ciphertext>,
    transcript: PassTranscript,
}

fn fixture(seed: u64) -> Fixture {
    let group = Group::testing_256();
    let elgamal = ElGamal::new(group.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let servers: Vec<DhKeyPair> = (0..2)
        .map(|_| DhKeyPair::generate(&group, &mut rng))
        .collect();
    let server_keys: Vec<Element> = servers.iter().map(|s| s.public().clone()).collect();
    let combined = elgamal.combine_keys(&server_keys);
    let input: Vec<Ciphertext> = (0..ENTRIES)
        .map(|_| {
            let m = group.exp_base(&group.random_scalar(&mut rng));
            elgamal.encrypt(&mut rng, &combined, &m)
        })
        .collect();
    let transcript = perform_pass(
        &elgamal,
        &server_keys,
        0,
        &servers[0],
        &input,
        SOUNDNESS,
        b"parallel-verify",
        &mut rng,
    );
    Fixture {
        elgamal,
        server_keys,
        input,
        transcript,
    }
}

#[test]
fn honest_pass_verifies_under_parallel_scan() {
    force_multithreaded_pool();
    let f = fixture(0xA0);
    assert!(verify_pass(
        &f.elgamal,
        &f.server_keys,
        &f.input,
        &f.transcript,
        b"parallel-verify"
    )
    .is_ok());
}

#[test]
fn tampered_dleq_proof_blames_minimum_failing_entry() {
    force_multithreaded_pool();
    // Corrupt two proofs; blame must land on the lower index, exactly as a
    // serial first-failure scan would report.
    let f = fixture(0xA1);
    let group = f.elgamal.group().clone();
    for (lo, hi) in [(3usize, 19usize), (0, ENTRIES - 1), (17, 18)] {
        let mut t = f.transcript.clone();
        for k in [lo, hi] {
            t.decryption_proofs[k].response =
                group.scalar_add(&t.decryption_proofs[k].response, &Scalar::one());
        }
        assert_eq!(
            verify_pass(&f.elgamal, &f.server_keys, &f.input, &t, b"parallel-verify"),
            Err(PassError::DecryptionProof { entry: lo }),
            "corrupted entries {lo} and {hi}"
        );
    }
}

#[test]
fn tampered_stripped_entries_blame_minimum_failing_entry() {
    force_multithreaded_pool();
    let f = fixture(0xA2);
    let group = f.elgamal.group().clone();
    for (lo, hi) in [(5usize, 21usize), (0, 16)] {
        let mut t = f.transcript.clone();
        for k in [lo, hi] {
            t.stripped[k].c2 = group.mul(&t.stripped[k].c2, &group.generator());
        }
        assert_eq!(
            verify_pass(&f.elgamal, &f.server_keys, &f.input, &t, b"parallel-verify"),
            Err(PassError::StrippedEntry { entry: lo }),
            "corrupted entries {lo} and {hi}"
        );
    }
}
