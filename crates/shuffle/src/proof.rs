//! Cut-and-choose shuffle argument for the re-randomizing permutation step.
//!
//! Dissent uses Neff's verifiable shuffle for scheduling and accusations
//! (§3.10), but "depends minimally on the shuffle's implementation details,
//! so many shuffle algorithms should be usable".  This reproduction uses a
//! conceptually simpler argument with the same interface and the same
//! linear-in-N cost structure: a Fiat–Shamir **shadow shuffle** proof.
//!
//! The prover wants to convince everyone that `output` is a permutation and
//! re-randomization of `input` under the current remaining public key,
//! without revealing the permutation.  For each of `T` shadow rounds it
//! publishes an independent shadow shuffle `S_t` of the input.  A hash of
//! the transcript selects, per shadow, one of two reveals:
//!
//! * bit 0 — reveal how `S_t` was built from `input` (permutation and
//!   randomizers), proving the shadow itself is a correct shuffle;
//! * bit 1 — reveal how the real `output` is obtained from `S_t`
//!   (the *relative* permutation and randomizer differences), which links
//!   output to input through the shadow without exposing either permutation.
//!
//! A prover who cheats (output is not a permutation/re-randomization of
//! input) fails at least one of the two checks for every shadow, so it
//! survives only by guessing all `T` challenge bits: soundness error `2^-T`.
//! Each check costs `O(N)` exponentiations, so a full proof is `O(T·N)` —
//! the same asymptotic regime as the paper's shuffle.

use crate::permutation::Permutation;
use dissent_crypto::elgamal::{Ciphertext, ElGamal};
use dissent_crypto::group::{Element, Group, Scalar};
use dissent_crypto::prng::DetPrng;
use dissent_crypto::sha256::Sha256;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Default number of shadow rounds (soundness error `2^-T`).
///
/// 40 keeps unit-test and simulation runtimes reasonable while leaving the
/// protocol structure identical to a production setting (where 80–128 would
/// be used; the parameter is caller-configurable).
pub const DEFAULT_SOUNDNESS: usize = 40;

/// The response for a single shadow round.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShadowResponse {
    /// Challenge bit 0: open the shadow — reveal its permutation and
    /// per-output randomizers relative to the *input*.
    Open {
        /// Shadow permutation.
        permutation: Permutation,
        /// Randomizer used for each shadow output position.
        randomizers: Vec<Scalar>,
    },
    /// Challenge bit 1: link the shadow to the real output — reveal the
    /// relative permutation and randomizer differences.
    Link {
        /// Relative permutation δ with `output[i] ~ shadow[δ(i)]`.
        permutation: Permutation,
        /// Randomizer difference for each output position.
        deltas: Vec<Scalar>,
    },
}

/// A non-interactive shuffle proof.
///
/// `PartialEq` is derived so tests can assert that parallel and serial
/// proving produce bit-identical transcripts.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShuffleProof {
    /// The shadow shuffles, one list of ciphertexts per round.
    pub shadows: Vec<Vec<Ciphertext>>,
    /// One response per shadow round.
    pub responses: Vec<ShadowResponse>,
}

/// Why a shuffle proof failed verification.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShuffleProofError {
    /// The proof's global shape is wrong (empty, list-length mismatches).
    Malformed,
    /// The check of shadow round `shadow` failed: the revealed
    /// permutation/randomizers do not reproduce the shadow (challenge 0) or
    /// do not link the shadow to the output (challenge 1), or the response
    /// type does not match the challenge bit.
    Shadow {
        /// Index of the failing shadow round.
        shadow: usize,
    },
}

impl std::fmt::Display for ShuffleProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShuffleProofError::Malformed => write!(f, "shuffle proof is malformed"),
            ShuffleProofError::Shadow { shadow } => {
                write!(f, "shuffle proof failed at shadow round {shadow}")
            }
        }
    }
}

impl std::error::Error for ShuffleProofError {}

/// Witness data the prover holds for the real shuffle.
#[derive(Clone, Debug)]
pub struct ShuffleWitness {
    /// The real permutation: `output[i] = rerand(input[permutation(i)])`.
    pub permutation: Permutation,
    /// The real randomizer applied at each output position.
    pub randomizers: Vec<Scalar>,
}

/// Perform a re-randomizing shuffle of `input` and return the output
/// together with the witness needed to prove it.
pub fn shuffle_and_rerandomize<R: RngCore + ?Sized>(
    elgamal: &ElGamal,
    remaining_key: &Element,
    input: &[Ciphertext],
    rng: &mut R,
) -> (Vec<Ciphertext>, ShuffleWitness) {
    // The remaining key is raised to a fresh exponent once per entry (and
    // once per entry per shadow round in the prover): comb acceleration.
    elgamal.group().register_fixed_base(remaining_key);
    let n = input.len();
    let permutation = Permutation::random(rng, n);
    let randomizers: Vec<Scalar> = (0..n).map(|_| elgamal.group().random_scalar(rng)).collect();
    // Re-randomize all entries as one batch: both bases (generator and
    // remaining key) serve the whole list from their cached comb tables in
    // the Montgomery domain (`ElGamal::rerandomize_batch`), instead of a
    // per-entry `exp` + division-based multiply.
    let permuted: Vec<&Ciphertext> = (0..n).map(|i| &input[permutation.source_of(i)]).collect();
    let output = elgamal.rerandomize_batch(remaining_key, &permuted, &randomizers);
    (
        output,
        ShuffleWitness {
            permutation,
            randomizers,
        },
    )
}

/// Derive the `T` challenge bits from the full transcript (Fiat–Shamir).
fn challenge_bits(
    group: &Group,
    context: &[u8],
    remaining_key: &Element,
    input: &[Ciphertext],
    output: &[Ciphertext],
    shadows: &[Vec<Ciphertext>],
) -> Vec<bool> {
    let mut hasher = Sha256::new();
    hasher.update(b"dissent-shuffle-proof");
    hasher.update(&(context.len() as u64).to_be_bytes());
    hasher.update(context);
    hasher.update(&remaining_key.to_bytes(group));
    let absorb_list = |h: &mut Sha256, list: &[Ciphertext]| {
        h.update(&(list.len() as u64).to_be_bytes());
        for ct in list {
            h.update(&ct.to_bytes(group));
        }
    };
    absorb_list(&mut hasher, input);
    absorb_list(&mut hasher, output);
    for s in shadows {
        absorb_list(&mut hasher, s);
    }
    let digest = hasher.finalize();
    let mut prng = DetPrng::new(&digest, b"shuffle-challenge-bits");
    (0..shadows.len()).map(|_| prng.bit()).collect()
}

/// The deterministic child RNG for shadow round `t`.
///
/// All shadow randomness descends from one 32-byte seed drawn from the
/// caller's RNG before any shadow work starts; each round then gets its own
/// domain-separated stream.  Two consequences the parallel prover relies
/// on:
///
/// * a shadow's bytes depend only on `(seed, t)` — never on which worker
///   generates it or in what order — so the transcript is reproducible and
///   identical for every thread count and chunking;
/// * the caller's RNG state advances by exactly the seed draw, independent
///   of the soundness parameter.
fn shadow_rng(seed: &[u8; 32], t: usize) -> DetPrng {
    let mut label = b"dissent-shuffle-shadow-rng-".to_vec();
    label.extend_from_slice(&(t as u64).to_be_bytes());
    DetPrng::new(seed, &label)
}

/// Produce a proof that `output` is a permutation and re-randomization of
/// `input` under `remaining_key`.
///
/// Shadow generation — the prover's dominant cost, `soundness` independent
/// re-randomized shuffles of the input — runs on the thread pool in chunks
/// of `soundness / threads`.  See [`prove_chunked`] for the determinism
/// contract (the transcript is bit-identical for every worker count).
#[allow(clippy::too_many_arguments)]
pub fn prove<R: RngCore + ?Sized>(
    elgamal: &ElGamal,
    remaining_key: &Element,
    input: &[Ciphertext],
    output: &[Ciphertext],
    witness: &ShuffleWitness,
    soundness: usize,
    context: &[u8],
    rng: &mut R,
) -> ShuffleProof {
    let chunk = soundness.div_ceil(rayon::current_num_threads()).max(1);
    prove_chunked(
        elgamal,
        remaining_key,
        input,
        output,
        witness,
        soundness,
        context,
        rng,
        chunk,
    )
}

/// [`prove`] with an explicit shadow chunk size — one pool task generates
/// `chunk_size` consecutive shadow rounds.
///
/// Exposed so the equivalence tests can emulate every worker count in one
/// process: because each shadow round draws from its own deterministic
/// child RNG ([`shadow_rng`]) and results are collected in round order, the
/// proof is **bit-identical for every chunk size and thread count** given
/// the same caller RNG state.  `chunk_size >= soundness` is the serial
/// path.
#[allow(clippy::too_many_arguments)]
pub fn prove_chunked<R: RngCore + ?Sized>(
    elgamal: &ElGamal,
    remaining_key: &Element,
    input: &[Ciphertext],
    output: &[Ciphertext],
    witness: &ShuffleWitness,
    soundness: usize,
    context: &[u8],
    rng: &mut R,
    chunk_size: usize,
) -> ShuffleProof {
    use rayon::prelude::*;
    let group = elgamal.group();
    let n = input.len();
    // Register once, before the pool forks: every shadow raises the
    // remaining key per entry.
    group.register_fixed_base(remaining_key);
    let mut seed = [0u8; 32];
    rng.fill_bytes(&mut seed);
    // Generate the shadow shuffles, one domain-separated child RNG per
    // round, chunked across the pool.  Chunk results are collected by index
    // and flattened in order, so scheduling never reorders rounds.
    let rounds: Vec<usize> = (0..soundness).collect();
    let mut per_chunk: Vec<Vec<(Vec<Ciphertext>, ShuffleWitness)>> = Vec::new();
    rounds
        .par_chunks(chunk_size.max(1))
        .map(|chunk| {
            chunk
                .iter()
                .map(|&t| {
                    let mut child = shadow_rng(&seed, t);
                    shuffle_and_rerandomize(elgamal, remaining_key, input, &mut child)
                })
                .collect()
        })
        .collect_into_vec(&mut per_chunk);
    let mut shadows = Vec::with_capacity(soundness);
    let mut shadow_witnesses = Vec::with_capacity(soundness);
    for (s, w) in per_chunk.into_iter().flatten() {
        shadows.push(s);
        shadow_witnesses.push(w);
    }
    let bits = challenge_bits(group, context, remaining_key, input, output, &shadows);
    let responses = bits
        .iter()
        .zip(shadow_witnesses)
        .map(|(&bit, sw)| {
            if !bit {
                ShadowResponse::Open {
                    permutation: sw.permutation,
                    randomizers: sw.randomizers,
                }
            } else {
                // Link: δ(i) = σ_t⁻¹(σ(i)), Δ[i] = r[i] − r_t[δ(i)], so that
                // rerand_{Δ[i]}(shadow[δ(i)]) == output[i].
                let delta_perm = witness.permutation.compose(&sw.permutation.inverse());
                let deltas: Vec<Scalar> = (0..n)
                    .map(|i| {
                        group.scalar_sub(
                            &witness.randomizers[i],
                            &sw.randomizers[delta_perm.source_of(i)],
                        )
                    })
                    .collect();
                ShadowResponse::Link {
                    permutation: delta_perm,
                    deltas,
                }
            }
        })
        .collect();
    ShuffleProof { shadows, responses }
}

/// Verify a shuffle proof.
///
/// On failure the error names the first failing shadow round, so a
/// transcript auditor can point at the exact check the prover flunked.
pub fn verify(
    elgamal: &ElGamal,
    remaining_key: &Element,
    input: &[Ciphertext],
    output: &[Ciphertext],
    proof: &ShuffleProof,
    context: &[u8],
) -> Result<(), ShuffleProofError> {
    let group = elgamal.group();
    let n = input.len();
    if output.len() != n || proof.shadows.len() != proof.responses.len() || proof.shadows.is_empty()
    {
        return Err(ShuffleProofError::Malformed);
    }
    if proof.shadows.iter().any(|s| s.len() != n) {
        return Err(ShuffleProofError::Malformed);
    }
    // Every re-encryption check below raises the remaining key to a revealed
    // exponent; the cached comb makes that a fixed-base operation.
    group.register_fixed_base(remaining_key);
    let bits = challenge_bits(group, context, remaining_key, input, output, &proof.shadows);
    for (t, ((shadow, response), &bit)) in proof
        .shadows
        .iter()
        .zip(proof.responses.iter())
        .zip(bits.iter())
        .enumerate()
    {
        let failed = Err(ShuffleProofError::Shadow { shadow: t });
        match (bit, response) {
            (
                false,
                ShadowResponse::Open {
                    permutation,
                    randomizers,
                },
            ) => {
                if permutation.len() != n || randomizers.len() != n {
                    return failed;
                }
                for i in 0..n {
                    let expected = elgamal.rerandomize_with(
                        remaining_key,
                        &input[permutation.source_of(i)],
                        &randomizers[i],
                    );
                    if expected != shadow[i] {
                        return failed;
                    }
                }
            }
            (
                true,
                ShadowResponse::Link {
                    permutation,
                    deltas,
                },
            ) => {
                if permutation.len() != n || deltas.len() != n {
                    return failed;
                }
                for i in 0..n {
                    let expected = elgamal.rerandomize_with(
                        remaining_key,
                        &shadow[permutation.source_of(i)],
                        &deltas[i],
                    );
                    if expected != output[i] {
                        return failed;
                    }
                }
            }
            // Response type does not match the challenge bit.
            _ => return failed,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dissent_crypto::dh::DhKeyPair;
    use dissent_crypto::group::Group;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TEST_SOUNDNESS: usize = 10;

    fn setup(n: usize) -> (ElGamal, Element, Vec<Ciphertext>, StdRng) {
        let group = Group::testing_256();
        let eg = ElGamal::new(group.clone());
        let mut rng = StdRng::seed_from_u64(0x5u64);
        let key = DhKeyPair::generate(&group, &mut rng);
        let input: Vec<Ciphertext> = (0..n)
            .map(|_| {
                let m = group.exp_base(&group.random_scalar(&mut rng));
                eg.encrypt(&mut rng, key.public(), &m)
            })
            .collect();
        (eg, key.public().clone(), input, rng)
    }

    #[test]
    fn honest_proof_verifies() {
        let (eg, key, input, mut rng) = setup(8);
        let (output, witness) = shuffle_and_rerandomize(&eg, &key, &input, &mut rng);
        let proof = prove(
            &eg,
            &key,
            &input,
            &output,
            &witness,
            TEST_SOUNDNESS,
            b"t",
            &mut rng,
        );
        assert!(verify(&eg, &key, &input, &output, &proof, b"t").is_ok());
    }

    #[test]
    fn wrong_context_rejected() {
        let (eg, key, input, mut rng) = setup(4);
        let (output, witness) = shuffle_and_rerandomize(&eg, &key, &input, &mut rng);
        let proof = prove(
            &eg,
            &key,
            &input,
            &output,
            &witness,
            TEST_SOUNDNESS,
            b"a",
            &mut rng,
        );
        assert!(verify(&eg, &key, &input, &output, &proof, b"b").is_err());
    }

    #[test]
    fn tampered_output_rejected() {
        let (eg, key, input, mut rng) = setup(5);
        let (mut output, witness) = shuffle_and_rerandomize(&eg, &key, &input, &mut rng);
        let proof = prove(
            &eg,
            &key,
            &input,
            &output,
            &witness,
            TEST_SOUNDNESS,
            b"t",
            &mut rng,
        );
        // Replace one output entry with a fresh encryption of a different message.
        let m = eg.group().exp_base(&eg.group().random_scalar(&mut rng));
        output[2] = eg.encrypt(&mut rng, &key, &m);
        assert!(verify(&eg, &key, &input, &output, &proof, b"t").is_err());
    }

    #[test]
    fn dropped_entry_rejected() {
        let (eg, key, input, mut rng) = setup(5);
        let (output, witness) = shuffle_and_rerandomize(&eg, &key, &input, &mut rng);
        let proof = prove(
            &eg,
            &key,
            &input,
            &output,
            &witness,
            TEST_SOUNDNESS,
            b"t",
            &mut rng,
        );
        assert_eq!(
            verify(&eg, &key, &input, &output[..4], &proof, b"t"),
            Err(ShuffleProofError::Malformed)
        );
    }

    #[test]
    fn duplicated_entry_shuffle_rejected() {
        // A malicious shuffler replaces one ciphertext with a copy of
        // another (dropping a client's pseudonym key).  The proof cannot be
        // faked for such an output except with probability 2^-T.
        let (eg, key, input, mut rng) = setup(6);
        let (mut output, witness) = shuffle_and_rerandomize(&eg, &key, &input, &mut rng);
        output[0] = output[1].clone();
        let proof = prove(
            &eg,
            &key,
            &input,
            &output,
            &witness,
            TEST_SOUNDNESS,
            b"t",
            &mut rng,
        );
        assert!(verify(&eg, &key, &input, &output, &proof, b"t").is_err());
    }

    #[test]
    fn shuffle_preserves_plaintext_multiset() {
        let group = Group::testing_256();
        let eg = ElGamal::new(group.clone());
        let mut rng = StdRng::seed_from_u64(9);
        let key = DhKeyPair::generate(&group, &mut rng);
        let messages: Vec<Element> = (0..7)
            .map(|_| group.exp_base(&group.random_scalar(&mut rng)))
            .collect();
        let input: Vec<Ciphertext> = messages
            .iter()
            .map(|m| eg.encrypt(&mut rng, key.public(), m))
            .collect();
        let (output, _) = shuffle_and_rerandomize(&eg, key.public(), &input, &mut rng);
        let mut decrypted: Vec<Vec<u8>> = output
            .iter()
            .map(|ct| eg.decrypt(key.secret(), ct).to_bytes(&group))
            .collect();
        let mut expected: Vec<Vec<u8>> = messages.iter().map(|m| m.to_bytes(&group)).collect();
        decrypted.sort();
        expected.sort();
        assert_eq!(decrypted, expected);
    }

    #[test]
    fn empty_proof_rejected() {
        let (eg, key, input, mut rng) = setup(3);
        let (output, _) = shuffle_and_rerandomize(&eg, &key, &input, &mut rng);
        let proof = ShuffleProof {
            shadows: vec![],
            responses: vec![],
        };
        assert!(verify(&eg, &key, &input, &output, &proof, b"t").is_err());
    }
}
