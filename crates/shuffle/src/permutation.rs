//! Permutations and their algebra.
//!
//! Verifiable shuffles permute lists of ciphertexts; the cut-and-choose
//! shuffle argument additionally needs permutation *composition* and
//! *inversion* (to link a shadow shuffle to the real one without revealing
//! either).  This module provides a small, well-tested permutation type.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A permutation of `n` positions.
///
/// Applying the permutation produces `output[i] = input[map[i]]`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Permutation {
    map: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        Permutation {
            map: (0..n).collect(),
        }
    }

    /// A uniformly random permutation (Fisher–Yates).
    pub fn random<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Self {
        let mut map: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            map.swap(i, j);
        }
        Permutation { map }
    }

    /// Construct from an explicit mapping; returns `None` if it is not a
    /// bijection on `0..map.len()`.
    pub fn from_map(map: Vec<usize>) -> Option<Self> {
        let n = map.len();
        let mut seen = vec![false; n];
        for &m in &map {
            if m >= n || seen[m] {
                return None;
            }
            seen[m] = true;
        }
        Some(Permutation { map })
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The source index feeding output position `i`.
    pub fn source_of(&self, i: usize) -> usize {
        self.map[i]
    }

    /// The raw mapping.
    pub fn as_slice(&self) -> &[usize] {
        &self.map
    }

    /// Apply to a slice: `output[i] = input[map[i]]`.
    pub fn apply<T: Clone>(&self, input: &[T]) -> Vec<T> {
        assert_eq!(input.len(), self.map.len(), "permutation length mismatch");
        self.map.iter().map(|&j| input[j].clone()).collect()
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.map.len()];
        for (i, &j) in self.map.iter().enumerate() {
            inv[j] = i;
        }
        Permutation { map: inv }
    }

    /// Composition `self ∘ other`: applying the result is the same as
    /// applying `other` first and then `self`.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "permutation length mismatch");
        Permutation {
            map: self.map.iter().map(|&i| other.map[i]).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_is_noop() {
        let p = Permutation::identity(5);
        let v = vec![10, 20, 30, 40, 50];
        assert_eq!(p.apply(&v), v);
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn apply_and_inverse_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 5, 33, 100] {
            let p = Permutation::random(&mut rng, n);
            let v: Vec<u32> = (0..n as u32).collect();
            let shuffled = p.apply(&v);
            let restored = p.inverse().apply(&shuffled);
            assert_eq!(restored, v);
            // The shuffle is a permutation of the input.
            let mut sorted = shuffled.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, v);
        }
    }

    #[test]
    fn compose_applies_right_then_left() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = Permutation::random(&mut rng, 20);
        let q = Permutation::random(&mut rng, 20);
        let v: Vec<u32> = (100..120).collect();
        let composed = p.compose(&q);
        assert_eq!(composed.apply(&v), p.apply(&q.apply(&v)));
    }

    #[test]
    fn inverse_composes_to_identity() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = Permutation::random(&mut rng, 17);
        assert_eq!(p.compose(&p.inverse()), Permutation::identity(17));
        assert_eq!(p.inverse().compose(&p), Permutation::identity(17));
    }

    #[test]
    fn from_map_validates() {
        assert!(Permutation::from_map(vec![2, 0, 1]).is_some());
        assert!(Permutation::from_map(vec![0, 0, 1]).is_none());
        assert!(Permutation::from_map(vec![0, 3, 1]).is_none());
        assert!(Permutation::from_map(vec![]).is_some());
    }

    #[test]
    fn random_permutations_cover_the_space() {
        // Rough uniformity check: over many draws of size-3 permutations all
        // 6 arrangements occur.
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(Permutation::random(&mut rng, 3).map.clone());
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn empty_permutation() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert_eq!(p.apply(&Vec::<u8>::new()), Vec::<u8>::new());
    }
}
