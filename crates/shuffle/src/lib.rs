//! # dissent-shuffle
//!
//! Verifiable shuffles for the Dissent reproduction (paper §3.10).
//!
//! Dissent uses a verifiable shuffle twice: a **key shuffle** at session
//! setup assigns each client a secret pseudonym slot, and a **message
//! (accusation) shuffle** gives disruption victims a channel a disruptor
//! cannot corrupt.  The paper uses Neff's shuffle argument; this crate keeps
//! the identical protocol structure (per-server shuffle → re-randomize →
//! strip layer → everyone verifies) but proves the permutation step with a
//! Fiat–Shamir cut-and-choose shadow-shuffle argument and the decryption
//! step with per-entry Chaum–Pedersen proofs (see DESIGN.md §2 for the
//! substitution rationale).
//!
//! * [`permutation`] — permutation algebra.
//! * [`proof`] — the cut-and-choose shuffle argument.
//! * [`pass`] — one server's verifiable pass (shuffle + layer decryption).
//! * [`protocol`] — end-to-end key and message shuffles and transcript
//!   auditing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pass;
pub mod permutation;
pub mod proof;
pub mod protocol;

pub use pass::{perform_pass, perform_pass_unbatched, verify_pass, PassError, PassTranscript};
pub use permutation::Permutation;
pub use proof::{ShuffleProof, DEFAULT_SOUNDNESS};
pub use protocol::{
    decode_messages, run_shuffle, submit_element, submit_message, verify_transcript, ShuffleError,
    ShuffleTranscript,
};
