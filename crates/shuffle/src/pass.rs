//! One server's pass of the verifiable shuffle.
//!
//! In Dissent's shuffle (paper §3.10) each server in turn "shuffles the
//! input and removes a layer of encryption".  A pass therefore has two
//! verifiable halves:
//!
//! 1. **Shuffle + re-randomize** — proven with the cut-and-choose shadow
//!    argument of [`crate::proof`]; the permutation stays secret.
//! 2. **Layer decryption** — element-wise division of `c2` by `c1^{x_j}`,
//!    proven with one Chaum–Pedersen DLEQ proof per entry (no permutation is
//!    involved in this half, so the per-entry proof reveals nothing).
//!
//! Any node holding the transcript can verify both halves with only public
//! information; a server that cheats is identified immediately and the
//! shuffle restarts without it (go/no-go behaviour handled by the caller).

use crate::proof::{self, ShuffleProof, ShuffleProofError};
use dissent_crypto::chaum_pedersen::{self, DleqBatchItem, DleqProof, DleqProveItem};
use dissent_crypto::dh::DhKeyPair;
use dissent_crypto::elgamal::{Ciphertext, ElGamal};
use dissent_crypto::group::Element;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Minimum entry count before per-entry verification loops are sharded
/// across the thread pool.
const PARALLEL_ENTRIES_MIN: usize = 16;

/// Find the lowest index whose entry fails `fails`, sharding the scan
/// across the pool for large lists.
///
/// Serial scanning returns the *first* failing index; taking the minimum
/// over all failing indices found by the shards returns the same index, so
/// blame attribution is identical for every thread count.
fn first_failure<F>(n: usize, fails: F) -> Option<usize>
where
    F: Fn(usize) -> bool + Sync,
{
    let threads = rayon::current_num_threads();
    if threads <= 1 || n < PARALLEL_ENTRIES_MIN {
        return (0..n).find(|&k| fails(k));
    }
    // Shard index *ranges* (one slot per shard) rather than materializing a
    // 0..n index vector; this scan runs on every successful verify_pass.
    let chunk = n.div_ceil(threads);
    let slots: Vec<std::sync::Mutex<Option<usize>>> = (0..n.div_ceil(chunk))
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    rayon::scope(|s| {
        for (i, slot) in slots.iter().enumerate() {
            let fails = &fails;
            s.spawn(move |_| {
                let start = i * chunk;
                let end = (start + chunk).min(n);
                *slot.lock().expect("shard slot poisoned") = (start..end).find(|&k| fails(k));
            });
        }
    });
    slots
        .into_iter()
        .filter_map(|m| m.into_inner().expect("shard slot poisoned"))
        .min()
}

/// Why one server's pass transcript failed verification.
///
/// Every variant names the exact check (and entry index) that failed, so
/// the caller can attribute blame to the misbehaving server — the paper's
/// accountability requirement — instead of just aborting.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PassError {
    /// The transcript's shape does not match the input (list lengths or
    /// server index out of range).
    Malformed,
    /// The cut-and-choose shuffle argument failed.
    Shuffle(ShuffleProofError),
    /// The DLEQ decryption proof for entry `entry` failed.
    DecryptionProof {
        /// Index of the entry whose proof failed.
        entry: usize,
    },
    /// The stripped ciphertext at `entry` is not the quotient of the
    /// shuffled ciphertext by the claimed decryption share.
    StrippedEntry {
        /// Index of the inconsistent entry.
        entry: usize,
    },
}

impl std::fmt::Display for PassError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PassError::Malformed => write!(f, "pass transcript is malformed"),
            PassError::Shuffle(e) => write!(f, "shuffle argument rejected: {e}"),
            PassError::DecryptionProof { entry } => {
                write!(f, "DLEQ decryption proof for entry {entry} failed")
            }
            PassError::StrippedEntry { entry } => {
                write!(
                    f,
                    "stripped ciphertext at entry {entry} does not match its share"
                )
            }
        }
    }
}

impl std::error::Error for PassError {}

/// The transcript one server publishes for its pass.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PassTranscript {
    /// Index of the server that performed the pass.
    pub server_index: usize,
    /// The ciphertext list after shuffling and re-randomizing (this server's
    /// layer still present).
    pub shuffled: Vec<Ciphertext>,
    /// Proof for the shuffle half.
    pub shuffle_proof: ShuffleProof,
    /// The ciphertext list after stripping this server's layer — the input
    /// to the next server's pass.
    pub stripped: Vec<Ciphertext>,
    /// Per-entry decryption shares `c1^{x_j}`.
    pub decryption_shares: Vec<Element>,
    /// Per-entry DLEQ proofs for the shares.
    pub decryption_proofs: Vec<DleqProof>,
}

/// Perform one server's pass.
///
/// The shuffle half is the pass's dominant cost: the real shuffle and every
/// shadow round re-randomize all `n` entries through the batched
/// Montgomery-domain comb path (`ElGamal::rerandomize_batch`), and the
/// `soundness` shadow rounds fan out across the thread pool with
/// deterministic per-round child RNGs — the transcript is bit-identical for
/// every worker count (see [`proof::prove`]).
///
/// * `elgamal` — the ElGamal instance over the session group;
/// * `server_keys` — every server's DH public key, in shuffle order;
/// * `server_index` — this server's position in that order;
/// * `server_keypair` — this server's keypair (public must match the list);
/// * `input` — the ciphertext list produced by the previous server (or the
///   clients, for the first server), encrypted under the keys of servers
///   `server_index..`;
/// * `soundness` — number of shadow rounds in the shuffle proof.
///
/// The decryption half batches its DLEQ proving through
/// [`chaum_pedersen::prove_batch`]: the server's public key and each
/// entry's share are passed into the prover instead of being recomputed
/// per entry, and every `g^w` commitment runs through one comb-domain
/// sweep.  The blinding scalars are still drawn one per entry in entry
/// order, so the transcript is bit-identical to the per-entry-prove form
/// ([`perform_pass_unbatched`], kept as the reference and bench baseline).
#[allow(clippy::too_many_arguments)]
pub fn perform_pass<R: RngCore + ?Sized>(
    elgamal: &ElGamal,
    server_keys: &[Element],
    server_index: usize,
    server_keypair: &DhKeyPair,
    input: &[Ciphertext],
    soundness: usize,
    context: &[u8],
    rng: &mut R,
) -> PassTranscript {
    perform_pass_inner(
        elgamal,
        server_keys,
        server_index,
        server_keypair,
        input,
        soundness,
        context,
        rng,
        true,
    )
}

/// [`perform_pass`] with the original per-entry DLEQ proving loop.
///
/// Produces a transcript bit-identical to [`perform_pass`] for the same
/// RNG state (asserted in the shuffle test suite); kept as the reference
/// implementation and as the baseline the bench runner measures the
/// batched prover against.
#[allow(clippy::too_many_arguments)]
pub fn perform_pass_unbatched<R: RngCore + ?Sized>(
    elgamal: &ElGamal,
    server_keys: &[Element],
    server_index: usize,
    server_keypair: &DhKeyPair,
    input: &[Ciphertext],
    soundness: usize,
    context: &[u8],
    rng: &mut R,
) -> PassTranscript {
    perform_pass_inner(
        elgamal,
        server_keys,
        server_index,
        server_keypair,
        input,
        soundness,
        context,
        rng,
        false,
    )
}

#[allow(clippy::too_many_arguments)]
fn perform_pass_inner<R: RngCore + ?Sized>(
    elgamal: &ElGamal,
    server_keys: &[Element],
    server_index: usize,
    server_keypair: &DhKeyPair,
    input: &[Ciphertext],
    soundness: usize,
    context: &[u8],
    rng: &mut R,
    batched: bool,
) -> PassTranscript {
    let group = elgamal.group();
    assert_eq!(
        server_keys[server_index],
        *server_keypair.public(),
        "server keypair does not match its slot in the key list"
    );
    // Remaining key: product of the public keys whose layers are still on
    // the ciphertexts (this server's included).
    let remaining_key = elgamal.combine_keys(&server_keys[server_index..]);

    let (shuffled, witness) = proof::shuffle_and_rerandomize(elgamal, &remaining_key, input, rng);
    let shuffle_proof = proof::prove(
        elgamal,
        &remaining_key,
        input,
        &shuffled,
        &witness,
        soundness,
        &pass_context(context, server_index),
        rng,
    );

    // Strip this server's layer element-wise and prove each share.
    let secret = server_keypair.secret();
    let decryption_shares: Vec<Element> = shuffled
        .iter()
        .map(|ct| elgamal.decryption_share(secret, ct))
        .collect();
    let decryption_proofs: Vec<DleqProof> = if batched {
        let entry_contexts: Vec<Vec<u8>> = (0..shuffled.len())
            .map(|k| entry_context(context, server_index, k))
            .collect();
        let items: Vec<DleqProveItem> = shuffled
            .iter()
            .zip(&decryption_shares)
            .zip(&entry_contexts)
            .map(|((ct, share), ctx)| DleqProveItem {
                h: &ct.c1,
                b: share,
                context: ctx,
            })
            .collect();
        chaum_pedersen::prove_batch(
            group,
            rng,
            &group.generator(),
            secret,
            server_keypair.public(),
            &items,
        )
    } else {
        shuffled
            .iter()
            .enumerate()
            .map(|(k, ct)| {
                chaum_pedersen::prove(
                    group,
                    rng,
                    &group.generator(),
                    &ct.c1,
                    secret,
                    &entry_context(context, server_index, k),
                )
            })
            .collect()
    };
    let stripped: Vec<Ciphertext> = shuffled
        .iter()
        .map(|ct| elgamal.strip_layer(secret, ct))
        .collect();

    PassTranscript {
        server_index,
        shuffled,
        shuffle_proof,
        stripped,
        decryption_shares,
        decryption_proofs,
    }
}

fn pass_context(context: &[u8], server_index: usize) -> Vec<u8> {
    let mut c = context.to_vec();
    c.extend_from_slice(b"|pass|");
    c.extend_from_slice(&(server_index as u64).to_be_bytes());
    c
}

fn entry_context(context: &[u8], server_index: usize, entry: usize) -> Vec<u8> {
    let mut c = pass_context(context, server_index);
    c.extend_from_slice(b"|entry|");
    c.extend_from_slice(&(entry as u64).to_be_bytes());
    c
}

/// Verify one server's pass transcript against the input it claims to have
/// processed.
///
/// The per-entry DLEQ decryption proofs are folded into a single batched
/// verification ([`chaum_pedersen::batch_verify`]): the generator and the
/// server's public key each contribute one base to the fold regardless of
/// entry count, so the whole pass costs one multi-exponentiation instead of
/// `2n` double exponentiations.  Only when the batch rejects does the
/// verifier fall back to per-entry checks to name the failing index — the
/// accountability path is as precise as before, and the honest path is far
/// cheaper.
pub fn verify_pass(
    elgamal: &ElGamal,
    server_keys: &[Element],
    input: &[Ciphertext],
    transcript: &PassTranscript,
    context: &[u8],
) -> Result<(), PassError> {
    let group = elgamal.group();
    let j = transcript.server_index;
    if j >= server_keys.len() {
        return Err(PassError::Malformed);
    }
    let n = input.len();
    if transcript.shuffled.len() != n
        || transcript.stripped.len() != n
        || transcript.decryption_shares.len() != n
        || transcript.decryption_proofs.len() != n
    {
        return Err(PassError::Malformed);
    }
    let remaining_key = elgamal.combine_keys(&server_keys[j..]);
    let server_pk = &server_keys[j];
    // The server key is a base of every DLEQ statement in this pass; the
    // remaining key is re-raised inside the shuffle-argument checks.
    group.register_fixed_base(server_pk);
    proof::verify(
        elgamal,
        &remaining_key,
        input,
        &transcript.shuffled,
        &transcript.shuffle_proof,
        &pass_context(context, j),
    )
    .map_err(PassError::Shuffle)?;
    // DLEQ per entry: log_g(server_pk) == log_{c1}(share), batched.
    let generator = group.generator();
    let entry_contexts: Vec<Vec<u8>> = (0..n).map(|k| entry_context(context, j, k)).collect();
    let items: Vec<DleqBatchItem> = (0..n)
        .map(|k| DleqBatchItem {
            g: &generator,
            h: &transcript.shuffled[k].c1,
            a: server_pk,
            b: &transcript.decryption_shares[k],
            proof: &transcript.decryption_proofs[k],
            context: &entry_contexts[k],
        })
        .collect();
    if !chaum_pedersen::batch_verify(group, &items) {
        // The batch can only fail because some single proof fails; locate
        // it so blame lands on a concrete entry.  The per-entry rescans run
        // sharded, but the minimum failing index is reported, so the blamed
        // entry is exactly the one a serial scan would name.
        let failing = first_failure(n, |k| {
            let item = &items[k];
            !chaum_pedersen::verify(
                group,
                item.g,
                item.h,
                item.a,
                item.b,
                item.proof,
                item.context,
            )
        });
        return Err(match failing {
            Some(entry) => PassError::DecryptionProof { entry },
            None => PassError::Malformed,
        });
    }
    // The stripped entry must be exactly (c1, c2 / share) — checked
    // multiplicatively as stripped.c2 · share == c2, which costs one group
    // multiplication instead of a modular inversion per entry.  The
    // explicit canonical-range check keeps this exactly as strict as
    // comparing against the (always-canonical) quotient.
    if let Some(entry) = first_failure(n, |k| {
        let ct = &transcript.shuffled[k];
        let share = &transcript.decryption_shares[k];
        let stripped = &transcript.stripped[k];
        stripped.c1 != ct.c1
            || stripped.c2.as_biguint() >= group.modulus()
            || group.mul(&stripped.c2, share) != ct.c2
    }) {
        return Err(PassError::StrippedEntry { entry });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dissent_crypto::group::Group;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SOUNDNESS: usize = 8;

    struct Fixture {
        elgamal: ElGamal,
        servers: Vec<DhKeyPair>,
        server_keys: Vec<Element>,
        messages: Vec<Element>,
        input: Vec<Ciphertext>,
        rng: StdRng,
    }

    fn fixture(n_msgs: usize, n_servers: usize) -> Fixture {
        let group = Group::testing_256();
        let elgamal = ElGamal::new(group.clone());
        let mut rng = StdRng::seed_from_u64(0xAA);
        let servers: Vec<DhKeyPair> = (0..n_servers)
            .map(|_| DhKeyPair::generate(&group, &mut rng))
            .collect();
        let server_keys: Vec<Element> = servers.iter().map(|s| s.public().clone()).collect();
        let combined = elgamal.combine_keys(&server_keys);
        let messages: Vec<Element> = (0..n_msgs)
            .map(|_| group.exp_base(&group.random_scalar(&mut rng)))
            .collect();
        let input: Vec<Ciphertext> = messages
            .iter()
            .map(|m| elgamal.encrypt(&mut rng, &combined, m))
            .collect();
        Fixture {
            elgamal,
            servers,
            server_keys,
            messages,
            input,
            rng,
        }
    }

    #[test]
    fn full_chain_of_passes_reveals_permuted_messages() {
        let mut f = fixture(6, 3);
        let mut current = f.input.clone();
        for (j, server) in f.servers.iter().enumerate() {
            let t = perform_pass(
                &f.elgamal,
                &f.server_keys,
                j,
                server,
                &current,
                SOUNDNESS,
                b"key-shuffle",
                &mut f.rng,
            );
            assert!(verify_pass(&f.elgamal, &f.server_keys, &current, &t, b"key-shuffle").is_ok());
            current = t.stripped;
        }
        // After the last pass, c2 holds the plaintexts.
        let group = f.elgamal.group();
        let mut out: Vec<Vec<u8>> = current.iter().map(|ct| ct.c2.to_bytes(group)).collect();
        let mut expected: Vec<Vec<u8>> = f.messages.iter().map(|m| m.to_bytes(group)).collect();
        out.sort();
        expected.sort();
        assert_eq!(out, expected);
    }

    #[test]
    fn batched_and_unbatched_passes_produce_identical_transcripts() {
        // Same RNG seed on both sides: prove_batch draws one blinding
        // scalar per entry in entry order, so the transcripts — shuffle
        // half included — must match byte for byte.
        let f = fixture(5, 2);
        let mut rng_a = StdRng::seed_from_u64(0x51);
        let a = perform_pass(
            &f.elgamal,
            &f.server_keys,
            0,
            &f.servers[0],
            &f.input,
            SOUNDNESS,
            b"ctx",
            &mut rng_a,
        );
        let mut rng_b = StdRng::seed_from_u64(0x51);
        let b = perform_pass_unbatched(
            &f.elgamal,
            &f.server_keys,
            0,
            &f.servers[0],
            &f.input,
            SOUNDNESS,
            b"ctx",
            &mut rng_b,
        );
        assert_eq!(a.shuffled, b.shuffled);
        assert_eq!(a.stripped, b.stripped);
        assert_eq!(a.decryption_shares, b.decryption_shares);
        assert_eq!(a.decryption_proofs, b.decryption_proofs);
        assert!(verify_pass(&f.elgamal, &f.server_keys, &f.input, &a, b"ctx").is_ok());
        assert!(verify_pass(&f.elgamal, &f.server_keys, &f.input, &b, b"ctx").is_ok());
    }

    #[test]
    fn pass_with_wrong_input_fails_verification() {
        let mut f = fixture(4, 2);
        let t = perform_pass(
            &f.elgamal,
            &f.server_keys,
            0,
            &f.servers[0],
            &f.input,
            SOUNDNESS,
            b"ctx",
            &mut f.rng,
        );
        let mut wrong_input = f.input.clone();
        wrong_input.swap(0, 1);
        // Swapping is still a permutation, so the shuffle proof may pass;
        // tamper with an actual ciphertext value instead.
        let group = f.elgamal.group();
        wrong_input[0].c2 = group.mul(&wrong_input[0].c2, &group.generator());
        assert!(verify_pass(&f.elgamal, &f.server_keys, &wrong_input, &t, b"ctx").is_err());
    }

    #[test]
    fn tampered_stripped_output_fails() {
        let mut f = fixture(4, 2);
        let mut t = perform_pass(
            &f.elgamal,
            &f.server_keys,
            0,
            &f.servers[0],
            &f.input,
            SOUNDNESS,
            b"ctx",
            &mut f.rng,
        );
        let group = f.elgamal.group();
        t.stripped[1].c2 = group.mul(&t.stripped[1].c2, &group.generator());
        assert_eq!(
            verify_pass(&f.elgamal, &f.server_keys, &f.input, &t, b"ctx"),
            Err(PassError::StrippedEntry { entry: 1 })
        );
    }

    #[test]
    fn tampered_dleq_proof_names_the_exact_entry() {
        use dissent_crypto::group::Scalar;
        let mut f = fixture(5, 2);
        let mut t = perform_pass(
            &f.elgamal,
            &f.server_keys,
            0,
            &f.servers[0],
            &f.input,
            SOUNDNESS,
            b"ctx",
            &mut f.rng,
        );
        let group = f.elgamal.group();
        t.decryption_proofs[3].response =
            group.scalar_add(&t.decryption_proofs[3].response, &Scalar::one());
        assert_eq!(
            verify_pass(&f.elgamal, &f.server_keys, &f.input, &t, b"ctx"),
            Err(PassError::DecryptionProof { entry: 3 })
        );
    }

    #[test]
    fn tampered_share_names_the_exact_entry() {
        let mut f = fixture(4, 2);
        let mut t = perform_pass(
            &f.elgamal,
            &f.server_keys,
            0,
            &f.servers[0],
            &f.input,
            SOUNDNESS,
            b"ctx",
            &mut f.rng,
        );
        let group = f.elgamal.group();
        // A tampered share breaks its DLEQ proof (the share is part of the
        // proven statement), so blame lands on that entry's proof.
        t.decryption_shares[2] = group.mul(&t.decryption_shares[2], &group.generator());
        assert_eq!(
            verify_pass(&f.elgamal, &f.server_keys, &f.input, &t, b"ctx"),
            Err(PassError::DecryptionProof { entry: 2 })
        );
    }

    #[test]
    fn pass_by_wrong_server_keypair_panics() {
        let mut f = fixture(2, 2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            perform_pass(
                &f.elgamal,
                &f.server_keys,
                0,
                &f.servers[1], // mismatched keypair for slot 0
                &f.input,
                SOUNDNESS,
                b"ctx",
                &mut f.rng,
            )
        }));
        assert!(result.is_err());
    }

    #[test]
    fn wrong_server_index_fails_verification() {
        let mut f = fixture(3, 2);
        let mut t = perform_pass(
            &f.elgamal,
            &f.server_keys,
            0,
            &f.servers[0],
            &f.input,
            SOUNDNESS,
            b"ctx",
            &mut f.rng,
        );
        t.server_index = 5;
        assert_eq!(
            verify_pass(&f.elgamal, &f.server_keys, &f.input, &t, b"ctx"),
            Err(PassError::Malformed)
        );
    }
}
