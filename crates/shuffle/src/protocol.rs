//! End-to-end key and message shuffles.
//!
//! These are the two flavours the paper distinguishes in §3.10:
//!
//! * a **key shuffle** anonymizes client *pseudonym public keys* (already
//!   group elements, no embedding needed) — run at session setup to produce
//!   the slot schedule;
//! * a **general message shuffle** anonymizes arbitrary short byte strings
//!   by embedding them into group elements — used as the accusation channel,
//!   because a disruptor cannot corrupt it.
//!
//! Both run the same pass structure: every client submits an ElGamal
//! encryption under the product of all server keys; servers take turns
//! shuffling, re-randomizing, proving, and stripping their layer; every
//! party verifies every pass ("go/no-go"); the final pass reveals the
//! permuted plaintexts.  The functions here run the whole pipeline
//! in-memory; `dissent-core` distributes the passes across the simulated
//! network and charges virtual time for them.
//!
//! Both the proving side (shadow rounds fan out over the thread pool,
//! re-randomization runs the batched comb path) and the verifying side
//! (batched DLEQ checks, sharded per-entry scans) are parallel; every
//! transcript and verdict is proven identical to a serial run, so the
//! protocol semantics are untouched by the thread count.

use crate::pass::{perform_pass, verify_pass, PassError, PassTranscript};
use dissent_crypto::dh::DhKeyPair;
use dissent_crypto::elgamal::{Ciphertext, ElGamal};
use dissent_crypto::group::{Element, Group};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Errors a shuffle run can produce.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShuffleError {
    /// A server's pass failed verification; the index names the culprit and
    /// the inner error says exactly which check it flunked.
    PassRejected {
        /// The misbehaving server's index.
        server: usize,
        /// The specific failing check within the pass.
        error: PassError,
    },
    /// A submitted message could not be embedded in a group element.
    MessageTooLong,
    /// The final output could not be decoded back into bytes.
    MalformedOutput,
    /// No servers were supplied.
    NoServers,
}

impl std::fmt::Display for ShuffleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShuffleError::PassRejected { server, error } => {
                write!(
                    f,
                    "shuffle pass of server {server} failed verification: {error}"
                )
            }
            ShuffleError::MessageTooLong => {
                write!(f, "message too long to embed in a group element")
            }
            ShuffleError::MalformedOutput => write!(f, "shuffle output failed to decode"),
            ShuffleError::NoServers => write!(f, "a shuffle requires at least one server"),
        }
    }
}

impl std::error::Error for ShuffleError {}

/// Why a full shuffle transcript failed an audit.
///
/// Names the offending pass (and through [`PassError`] the exact entry), so
/// an auditing client can attribute blame to one server.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TranscriptError {
    /// The transcript does not contain one pass per server.
    PassCount {
        /// Number of servers (expected pass count).
        expected: usize,
        /// Number of passes present.
        got: usize,
    },
    /// Pass `pass` claims to have been performed by the wrong server.
    PassOrder {
        /// Position in the transcript.
        pass: usize,
        /// The server index that pass claims.
        server_index: usize,
    },
    /// Pass `pass` failed verification.
    Pass {
        /// Index of the failing pass (== the misbehaving server).
        pass: usize,
        /// The specific failing check within the pass.
        error: PassError,
    },
    /// The revealed output does not match the final pass's stripped list.
    OutputMismatch,
}

impl std::fmt::Display for TranscriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranscriptError::PassCount { expected, got } => {
                write!(f, "transcript has {got} passes, expected {expected}")
            }
            TranscriptError::PassOrder { pass, server_index } => {
                write!(f, "pass {pass} claims server index {server_index}")
            }
            TranscriptError::Pass { pass, error } => {
                write!(f, "pass {pass} failed verification: {error}")
            }
            TranscriptError::OutputMismatch => {
                write!(f, "revealed output does not match the final pass")
            }
        }
    }
}

impl std::error::Error for TranscriptError {}

/// The full transcript of a shuffle run: every pass, verifiable by anyone.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShuffleTranscript {
    /// Client submissions (layered ciphertexts), in roster order.
    pub submissions: Vec<Ciphertext>,
    /// One transcript per server pass, in pass order.
    pub passes: Vec<PassTranscript>,
    /// The revealed, permuted plaintext elements.
    pub output: Vec<Element>,
}

/// Encrypt a client's group-element submission under all server keys.
pub fn submit_element<R: RngCore + ?Sized>(
    elgamal: &ElGamal,
    server_keys: &[Element],
    element: &Element,
    rng: &mut R,
) -> Ciphertext {
    let combined = elgamal.combine_keys(server_keys);
    elgamal.encrypt(rng, &combined, element)
}

/// Encrypt a client's byte-string submission (message shuffle).
pub fn submit_message<R: RngCore + ?Sized>(
    elgamal: &ElGamal,
    server_keys: &[Element],
    message: &[u8],
    rng: &mut R,
) -> Result<Ciphertext, ShuffleError> {
    let element = elgamal
        .group()
        .embed_message(message)
        .map_err(|_| ShuffleError::MessageTooLong)?;
    Ok(submit_element(elgamal, server_keys, &element, rng))
}

/// Run a complete shuffle over submitted ciphertexts with every server
/// honest-but-verified.  Each pass is checked before the next server runs;
/// a failing pass aborts with the culprit's index (the go/no-go outcome the
/// group acts on).
pub fn run_shuffle<R: RngCore + ?Sized>(
    group: &Group,
    servers: &[DhKeyPair],
    submissions: Vec<Ciphertext>,
    soundness: usize,
    context: &[u8],
    rng: &mut R,
) -> Result<ShuffleTranscript, ShuffleError> {
    if servers.is_empty() {
        return Err(ShuffleError::NoServers);
    }
    let elgamal = ElGamal::new(group.clone());
    let server_keys: Vec<Element> = servers.iter().map(|s| s.public().clone()).collect();
    let mut passes = Vec::with_capacity(servers.len());
    let mut current = submissions.clone();
    for (j, server) in servers.iter().enumerate() {
        let transcript = perform_pass(
            &elgamal,
            &server_keys,
            j,
            server,
            &current,
            soundness,
            context,
            rng,
        );
        if let Err(error) = verify_pass(&elgamal, &server_keys, &current, &transcript, context) {
            return Err(ShuffleError::PassRejected { server: j, error });
        }
        current = transcript.stripped.clone();
        passes.push(transcript);
    }
    let output: Vec<Element> = current.into_iter().map(|ct| ct.c2).collect();
    Ok(ShuffleTranscript {
        submissions,
        passes,
        output,
    })
}

/// Verify an entire shuffle transcript (e.g. a client auditing the servers).
///
/// Each pass's DLEQ proofs are verified as one batch (see
/// [`verify_pass`]); on failure the error names the offending pass and the
/// exact check inside it, which is what lets an auditor assign blame.
pub fn verify_transcript(
    group: &Group,
    server_keys: &[Element],
    transcript: &ShuffleTranscript,
    context: &[u8],
) -> Result<(), TranscriptError> {
    let elgamal = ElGamal::new(group.clone());
    let mut current = transcript.submissions.clone();
    if transcript.passes.len() != server_keys.len() {
        return Err(TranscriptError::PassCount {
            expected: server_keys.len(),
            got: transcript.passes.len(),
        });
    }
    for (j, pass) in transcript.passes.iter().enumerate() {
        if pass.server_index != j {
            return Err(TranscriptError::PassOrder {
                pass: j,
                server_index: pass.server_index,
            });
        }
        verify_pass(&elgamal, server_keys, &current, pass, context)
            .map_err(|error| TranscriptError::Pass { pass: j, error })?;
        current = pass.stripped.clone();
    }
    let output: Vec<Element> = current.into_iter().map(|ct| ct.c2).collect();
    if output != transcript.output {
        return Err(TranscriptError::OutputMismatch);
    }
    Ok(())
}

/// Decode the output of a *message* shuffle back into byte strings.
pub fn decode_messages(group: &Group, output: &[Element]) -> Result<Vec<Vec<u8>>, ShuffleError> {
    output
        .iter()
        .map(|el| {
            group
                .extract_message(el)
                .map_err(|_| ShuffleError::MalformedOutput)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SOUNDNESS: usize = 8;

    fn servers(group: &Group, n: usize, rng: &mut StdRng) -> Vec<DhKeyPair> {
        (0..n).map(|_| DhKeyPair::generate(group, rng)).collect()
    }

    #[test]
    fn key_shuffle_outputs_all_pseudonym_keys() {
        let group = Group::testing_256();
        let mut rng = StdRng::seed_from_u64(1);
        let servers = servers(&group, 3, &mut rng);
        let server_keys: Vec<Element> = servers.iter().map(|s| s.public().clone()).collect();
        let elgamal = ElGamal::new(group.clone());

        // Eight clients each submit a fresh pseudonym public key.
        let pseudonyms: Vec<Element> = (0..8)
            .map(|_| group.exp_base(&group.random_scalar(&mut rng)))
            .collect();
        let submissions: Vec<Ciphertext> = pseudonyms
            .iter()
            .map(|k| submit_element(&elgamal, &server_keys, k, &mut rng))
            .collect();

        let transcript = run_shuffle(
            &group,
            &servers,
            submissions,
            SOUNDNESS,
            b"key-shuffle",
            &mut rng,
        )
        .unwrap();
        assert!(verify_transcript(&group, &server_keys, &transcript, b"key-shuffle").is_ok());

        let mut out: Vec<Vec<u8>> = transcript
            .output
            .iter()
            .map(|e| e.to_bytes(&group))
            .collect();
        let mut expected: Vec<Vec<u8>> = pseudonyms.iter().map(|e| e.to_bytes(&group)).collect();
        out.sort();
        expected.sort();
        assert_eq!(out, expected);
    }

    #[test]
    fn message_shuffle_round_trips_accusations() {
        let group = Group::modp_512();
        let mut rng = StdRng::seed_from_u64(2);
        let servers = servers(&group, 2, &mut rng);
        let server_keys: Vec<Element> = servers.iter().map(|s| s.public().clone()).collect();
        let elgamal = ElGamal::new(group.clone());

        let messages: Vec<&[u8]> = vec![b"accuse: r3 s1 b17", b"", b"hello world"];
        let submissions: Vec<Ciphertext> = messages
            .iter()
            .map(|m| submit_message(&elgamal, &server_keys, m, &mut rng).unwrap())
            .collect();
        let transcript = run_shuffle(
            &group,
            &servers,
            submissions,
            SOUNDNESS,
            b"accusation",
            &mut rng,
        )
        .unwrap();
        let mut decoded = decode_messages(&group, &transcript.output).unwrap();
        let mut expected: Vec<Vec<u8>> = messages.iter().map(|m| m.to_vec()).collect();
        decoded.sort();
        expected.sort();
        assert_eq!(decoded, expected);
    }

    #[test]
    fn output_order_is_not_submission_order() {
        // With 16 submissions the probability the permutation is the
        // identity is 1/16! — if the output always matched input order the
        // shuffle would be broken.
        let group = Group::testing_256();
        let mut rng = StdRng::seed_from_u64(3);
        let servers = servers(&group, 2, &mut rng);
        let server_keys: Vec<Element> = servers.iter().map(|s| s.public().clone()).collect();
        let elgamal = ElGamal::new(group.clone());
        let pseudonyms: Vec<Element> = (0..16)
            .map(|_| group.exp_base(&group.random_scalar(&mut rng)))
            .collect();
        let submissions: Vec<Ciphertext> = pseudonyms
            .iter()
            .map(|k| submit_element(&elgamal, &server_keys, k, &mut rng))
            .collect();
        let transcript =
            run_shuffle(&group, &servers, submissions, SOUNDNESS, b"ks", &mut rng).unwrap();
        let same_order = transcript
            .output
            .iter()
            .zip(pseudonyms.iter())
            .all(|(a, b)| a == b);
        assert!(!same_order);
    }

    #[test]
    fn message_too_long_rejected() {
        let group = Group::testing_256();
        let mut rng = StdRng::seed_from_u64(4);
        let servers = servers(&group, 1, &mut rng);
        let server_keys: Vec<Element> = servers.iter().map(|s| s.public().clone()).collect();
        let elgamal = ElGamal::new(group.clone());
        let long = vec![0u8; 64];
        assert_eq!(
            submit_message(&elgamal, &server_keys, &long, &mut rng).unwrap_err(),
            ShuffleError::MessageTooLong
        );
    }

    #[test]
    fn no_servers_is_an_error() {
        let group = Group::testing_256();
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(
            run_shuffle(&group, &[], vec![], SOUNDNESS, b"x", &mut rng).unwrap_err(),
            ShuffleError::NoServers
        );
    }

    #[test]
    fn tampered_transcript_rejected_by_auditor() {
        let group = Group::testing_256();
        let mut rng = StdRng::seed_from_u64(6);
        let servers = servers(&group, 2, &mut rng);
        let server_keys: Vec<Element> = servers.iter().map(|s| s.public().clone()).collect();
        let elgamal = ElGamal::new(group.clone());
        let pseudonyms: Vec<Element> = (0..4)
            .map(|_| group.exp_base(&group.random_scalar(&mut rng)))
            .collect();
        let submissions: Vec<Ciphertext> = pseudonyms
            .iter()
            .map(|k| submit_element(&elgamal, &server_keys, k, &mut rng))
            .collect();
        let mut transcript =
            run_shuffle(&group, &servers, submissions, SOUNDNESS, b"ks", &mut rng).unwrap();
        // Swap two outputs: the auditor must notice the mismatch with the
        // final pass.
        transcript.output.swap(0, 1);
        assert_eq!(
            verify_transcript(&group, &server_keys, &transcript, b"ks"),
            Err(TranscriptError::OutputMismatch)
        );
    }
}
