//! Integration tests asserting the *shape* of every reproduced figure — the
//! qualitative claims of the paper's evaluation hold for the data the
//! harnesses in `dissent-bench` generate.

use dissent_bench::*;

#[test]
fn section_5_1_missed_fractions_are_small_and_ordered() {
    let results = window_policy_study(80);
    let missed: Vec<f64> = results.iter().map(|r| r.missed_fraction).collect();
    // wait-all, 1.1x, 1.2x, 2x
    assert!(missed[1] > missed[2] && missed[2] > missed[3]);
    assert!(missed[1] < 0.10, "1.1x misses {:.3}", missed[1]);
    assert!(missed[3] > 0.0);
}

#[test]
fn figure_7_shape_monotone_in_clients_and_bulk_heavier() {
    let points = clients_scaling(&[32, 320, 5120], 8);
    let total = |c: usize, w: &str| {
        points
            .iter()
            .find(|p| p.clients == c && p.workload == w && p.testbed == "DeterLab")
            .unwrap()
            .total_secs()
    };
    assert!(total(5120, "1% submit") > total(320, "1% submit"));
    assert!(total(320, "1% submit") >= total(32, "1% submit") * 0.8);
    assert!(total(5120, "128K message") > total(5120, "1% submit"));
    // Small groups stay interactive (paper: 0.5–0.6 s at 32–256 clients).
    assert!(total(32, "1% submit") < 2.0);
}

#[test]
fn figure_8_shape_servers_help_bulk_workload() {
    let points = servers_scaling(&[1, 32], 8);
    let total = |m: usize, w: &str| {
        points
            .iter()
            .find(|p| p.servers == m && p.workload == w)
            .unwrap()
            .total_secs()
    };
    assert!(total(1, "128K message") > total(32, "128K message"));
}

#[test]
fn figure_9_shape_shuffles_dominate_and_blame_crosses_an_hour() {
    let points = full_protocol_study(&[24, 1000]);
    for p in &points {
        assert!(p.dcnet_round_secs < p.key_shuffle_secs);
        assert!(p.key_shuffle_secs < p.blame_shuffle_secs);
    }
    let big = points.iter().find(|p| p.clients == 1000).unwrap();
    assert!(
        big.blame_shuffle_secs > 1800.0,
        "blame shuffle {:.0} s",
        big.blame_shuffle_secs
    );
    assert!(big.dcnet_round_secs < 60.0);
}

#[test]
fn figure_10_shape_ordering_and_ratios() {
    let results = web_browsing_study();
    let per_mb: Vec<f64> = results.iter().map(|r| r.secs_per_mb).collect();
    assert!(per_mb[0] < per_mb[1] && per_mb[1] < per_mb[2] && per_mb[2] < per_mb[3]);
    // Dissent+Tor costs tens of percent over Dissent alone, not multiples
    // (paper: 45 s vs 55 s).
    assert!(per_mb[3] / per_mb[2] < 2.0);
}

#[test]
fn figure_11_cdf_dissent_tor_lags_tor_by_seconds_at_the_median() {
    let results = web_browsing_study();
    let median = |r: &BrowsingResult| {
        let mut v = r.page_secs.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let tor = median(&results[1]);
    let both = median(&results[3]);
    assert!(both > tor);
    assert!(both - tor < 60.0);
}

#[test]
fn baseline_ablation_dissent_scales_two_orders_of_magnitude_further() {
    let rows = baseline_comparison(&[40, 5000]);
    let at_40 = &rows[0];
    let at_5000 = &rows[1];
    // At the scale prior systems demonstrated (≈40 nodes) the peer design is
    // usable; at 5000 it is not, while Dissent stays in the seconds range.
    assert!(at_40.peer_secs < 60.0);
    assert!(at_5000.peer_secs > 10.0 * at_5000.dissent_secs);
    assert!(at_5000.dissent_secs < 60.0);
}
