//! Equivalence proofs for the pipelined round engine.
//!
//! * The refactored lock-step path (`Session::run_round`) and the pipelined
//!   driver at W=1 must be **bit-identical to the pre-refactor monolithic
//!   engine**: the golden digests below were captured from the seed engine
//!   before `run_round` was split into phases, and every refactor since must
//!   keep reproducing them.
//! * The pipelined driver at W ∈ {2, 4} must produce bit-identical
//!   cleartexts, certification verdicts and expulsions to the (proven)
//!   lock-step W=1 driver under mixed client actions at steady state.
//! * Blame must still trace the culprit when the accused round is W−1 deep
//!   in the pipeline.

use dissent::crypto::sha256::{sha256_tagged, to_hex};
use dissent::dcnet::slots::SlotConfig;
use dissent::protocol::{
    ClientAction, GroupBuilder, PerEntityRng, PipelinedSession, RoundResult, Session, SharedRng,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn idle(n: usize) -> Vec<ClientAction> {
    vec![ClientAction::Idle; n]
}

/// Digest every observable output of one round: the raw cleartext plus the
/// decoded messages, certification verdict, participation and expulsions.
fn round_digest(r: &RoundResult) -> String {
    let mut parts: Vec<Vec<u8>> = vec![
        r.round.to_be_bytes().to_vec(),
        r.cleartext.clone(),
        vec![r.certified as u8],
        (r.participation as u64).to_be_bytes().to_vec(),
        (r.required_participation as u64).to_be_bytes().to_vec(),
    ];
    for c in &r.expelled {
        parts.push(c.to_be_bytes().to_vec());
    }
    for s in &r.corrupted_slots {
        parts.push((*s as u64).to_be_bytes().to_vec());
    }
    for (slot, msg) in &r.messages {
        parts.push((*slot as u64).to_be_bytes().to_vec());
        parts.push(msg.clone());
    }
    let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
    to_hex(&sha256_tagged(&refs))
}

/// The mixed-action script the golden digests were captured over: sends,
/// idles, churn and a disruption wave against a transmitting victim.
fn golden_script(session: &Session) -> Vec<Vec<ClientAction>> {
    let n = 6;
    let idle = || vec![ClientAction::Idle; n];
    let victim_slot = session.slot_of_client(1);
    let mut rounds = Vec::new();
    // r0: client 0 requests its slot.
    let mut a = idle();
    a[0] = ClientAction::Send(b"alpha".to_vec());
    rounds.push(a);
    // r1: the message goes out; client 1 queues one.
    let mut a = idle();
    a[1] = ClientAction::Send(b"bravo".to_vec());
    rounds.push(a);
    // r2: churn plus a second sender.
    let mut a = idle();
    a[2] = ClientAction::Offline;
    a[4] = ClientAction::Send(b"charlie".to_vec());
    rounds.push(a);
    // r3..r6: client 3 jams the victim's slot until blame expels it.
    for _ in 0..4 {
        let mut a = idle();
        a[1] = ClientAction::Send(b"delta".to_vec());
        a[3] = ClientAction::Disrupt { victim_slot };
        rounds.push(a);
    }
    // r7: recovery round with churn.
    let mut a = idle();
    a[5] = ClientAction::Offline;
    a[0] = ClientAction::Send(b"echo".to_vec());
    rounds.push(a);
    // r8..r9: drain.
    rounds.push(idle());
    rounds.push(idle());
    rounds
}

fn golden_session() -> (Session, StdRng) {
    let mut rng = StdRng::seed_from_u64(0x601D);
    let group = GroupBuilder::new(6, 2).with_shuffle_soundness(4).build();
    let session = Session::new(&group, &mut rng).expect("session setup");
    (session, rng)
}

/// Captured from the pre-refactor monolithic `Session::run_round` at the
/// seed of this PR (one digest per round of `golden_script`).  Do not update
/// these values to make a refactor pass: they are the definition of
/// "bit-identical to the lock-step engine".
const GOLDEN_DIGESTS: &[&str] = &[
    "05d4b40b6585a1219f54c0f8b90d4cdc13e851563c6880eea832516cbb87e412",
    "5d3f8ca8bd7fa44b1e8167a78b0b8f67b0709fd619b4a67446685e7853eb1de5",
    "3b963c77d5be93afd8b632bd03c50267e72c58ca2f77c6a0699e8efe60addc46",
    "7c81a106bd423748f89e783df412b798d8fa7c99a21a6367af46002327748b06",
    "f22a7b73315e42dc7149af8ced677afea48b18ef403c165bf2cff25feb791b78",
    "2f225235d08630d70bb51a360b23a2c903193f32463996c9b21cdeb816df5ac3",
    "1c58c4c59d3537616d4ba12313a1207ca2ae6c4ada830a35afec551ca419a0ae",
    "06458c6b305d0edb7e60317b28423285e152cc865fd2133df27953bb770b1988",
    "6bfacf0c3275437486fd7433535c1780fc9431b454aeda1a5d517467f41a0353",
    "59c1fdb127f4750f6709fae98a800daafcde5c6763a02a266327752910f382b0",
];

#[test]
fn lockstep_run_round_matches_pre_refactor_golden() {
    let (mut session, mut rng) = golden_session();
    let script = golden_script(&session);
    let digests: Vec<String> = script
        .iter()
        .map(|actions| round_digest(&session.run_round(actions, &mut rng)))
        .collect();
    if GOLDEN_DIGESTS.is_empty() {
        panic!("capture mode: {digests:#?}");
    }
    assert_eq!(digests.len(), GOLDEN_DIGESTS.len());
    for (i, (got, want)) in digests.iter().zip(GOLDEN_DIGESTS).enumerate() {
        assert_eq!(got, want, "round {i} diverged from the pre-refactor engine");
    }
    // The script exercised the blame path: the disruptor was expelled.
    assert!(session.expelled().contains(&3));
}

#[test]
fn pipelined_w1_is_bit_identical_to_the_pre_refactor_engine() {
    // The acceptance bar: the pipelined driver at W=1 reproduces the golden
    // digests captured from the monolithic pre-refactor `run_round`, byte
    // for byte — same cleartexts, certification verdicts and expulsions.
    let (session, mut rng) = golden_session();
    let script = golden_script(&session);
    let mut pipe = PipelinedSession::new(session, 1).expect("window 1");
    let mut digests = Vec::new();
    for actions in &script {
        let mut rngs = SharedRng(&mut rng);
        let results = pipe.run_batch(std::slice::from_ref(actions), &mut rngs);
        assert_eq!(results.len(), 1);
        digests.push(round_digest(&results[0]));
    }
    assert_eq!(digests.len(), GOLDEN_DIGESTS.len());
    for (i, (got, want)) in digests.iter().zip(GOLDEN_DIGESTS).enumerate() {
        assert_eq!(got, want, "round {i}: pipelined W=1 diverged");
    }
    assert!(pipe.session().expelled().contains(&3));
}

/// A session warmed up (in lock-step) to steady state: every slot open at
/// the default length, with a grace window long enough that idle rounds
/// never close a slot — the regime where pipeline-frozen layouts coincide
/// with the lock-step layouts round for round.
fn steady_state_session(seed: u64) -> Session {
    let mut rng = StdRng::seed_from_u64(seed);
    let group = GroupBuilder::new(6, 2)
        .with_shuffle_soundness(4)
        .with_slot_config(SlotConfig {
            grace_rounds: 100,
            ..SlotConfig::default()
        })
        .build();
    let mut session = Session::new(&group, &mut rng).expect("session setup");
    let all_send: Vec<ClientAction> = (0..6)
        .map(|i| ClientAction::Send(format!("warm{i}").into_bytes()))
        .collect();
    session.run_round(&all_send, &mut rng); // every client requests its slot
    session.run_round(&idle(6), &mut rng); // every slot opens and drains
    session
}

/// Mixed steady-state actions: sends, churn, and disruptions aimed at
/// clients that are idle that round (so no accusation is filed and the
/// per-entity RNG streams stay aligned across windows).
fn steady_script(session: &Session) -> Vec<Vec<ClientAction>> {
    let slot = |c: usize| session.slot_of_client(c);
    let mut rounds = Vec::new();
    let mut a = idle(6);
    a[0] = ClientAction::Send(b"m0".to_vec());
    a[3] = ClientAction::Disrupt {
        victim_slot: slot(4),
    };
    rounds.push(a);
    let mut a = idle(6);
    a[2] = ClientAction::Offline;
    a[5] = ClientAction::Send(b"m1".to_vec());
    rounds.push(a);
    let mut a = idle(6);
    a[1] = ClientAction::Send(b"m2".to_vec());
    a[3] = ClientAction::Disrupt {
        victim_slot: slot(0),
    };
    rounds.push(a);
    rounds.push(idle(6));
    let mut a = idle(6);
    a[4] = ClientAction::Send(b"m3".to_vec());
    a[2] = ClientAction::Disrupt {
        victim_slot: slot(5),
    };
    rounds.push(a);
    let mut a = idle(6);
    a[0] = ClientAction::Offline;
    a[1] = ClientAction::Offline;
    rounds.push(a);
    let mut a = idle(6);
    a[3] = ClientAction::Send(b"m4".to_vec());
    rounds.push(a);
    rounds.push(idle(6));
    rounds
}

#[test]
fn pipelined_windows_are_bit_identical_at_steady_state() {
    // W ∈ {1, 2, 4} over the same mixed-action script, same per-entity RNG
    // streams: every round's cleartext, certification verdict and expulsion
    // list must be bit-identical to the (proven) lock-step W=1 driver.
    let reference: Vec<String> = {
        let session = steady_state_session(0x57EA);
        let script = steady_script(&session);
        let mut pipe = PipelinedSession::new(session, 1).unwrap();
        let mut rngs = PerEntityRng::new(42, 6, 2);
        pipe.run_rounds(&script, &mut rngs)
            .iter()
            .map(round_digest)
            .collect()
    };
    assert_eq!(reference.len(), 8);
    for window in [2usize, 4] {
        let session = steady_state_session(0x57EA);
        let script = steady_script(&session);
        let mut pipe = PipelinedSession::new(session, window).unwrap();
        let mut rngs = PerEntityRng::new(42, 6, 2);
        let results = pipe.run_rounds(&script, &mut rngs);
        let digests: Vec<String> = results.iter().map(round_digest).collect();
        for (i, (got, want)) in digests.iter().zip(&reference).enumerate() {
            assert_eq!(got, want, "round {i} diverged at window {window}");
        }
        // The disruptions really did corrupt slots, the messages really did
        // flow, and no one was (wrongly) expelled.
        assert!(results.iter().any(|r| !r.corrupted_slots.is_empty()));
        assert!(results.iter().any(|r| !r.messages.is_empty()));
        assert!(results.iter().all(|r| r.expelled.is_empty() && r.certified));
    }
}

#[test]
fn blame_traces_the_culprit_from_deep_in_the_pipeline() {
    // The victim transmits in every round of a W=4 batch while client 3
    // jams its slot.  The accusation names the batch's first round — W−1
    // rounds deep by the time the pipeline drains — and blame must still
    // trace and expel the disruptor, because the evidence is retained for
    // the full blame horizon.
    let run = |window: usize| {
        let session = steady_state_session(0xB1A);
        let victim_slot = session.slot_of_client(1);
        let mut pipe = PipelinedSession::new(session, window).unwrap();
        let mut rngs = PerEntityRng::new(99, 6, 2);
        let batch: Vec<Vec<ClientAction>> = (0..4)
            .map(|_| {
                let mut a = idle(6);
                a[1] = ClientAction::Send(b"keep talking".to_vec());
                a[3] = ClientAction::Disrupt { victim_slot };
                a
            })
            .collect();
        let results = pipe.run_rounds(&batch, &mut rngs);
        (pipe, results, victim_slot)
    };

    let (mut pipe, results, victim_slot) = run(4);
    let expelled: Vec<u32> = results.iter().flat_map(|r| r.expelled.clone()).collect();
    assert_eq!(expelled, vec![3], "the disruptor is traced and expelled");
    assert!(results
        .iter()
        .any(|r| r.corrupted_slots.contains(&victim_slot)));
    // Expulsion takes effect at the pipeline boundary: the next batch runs
    // without the disruptor.
    let mut continuation = PerEntityRng::new(0xC0, 6, 2);
    let next = pipe.run_batch(&[idle(6)], &mut continuation);
    assert_eq!(next[0].participation, 5);

    // The first disrupted round is identical whether the engine ran
    // lock-step or 4-deep: same cleartext, same expulsion round.
    let (_, lockstep, _) = run(1);
    assert_eq!(round_digest(&lockstep[0]), round_digest(&results[0]));
    let expelled_lockstep: Vec<(u64, Vec<u32>)> = lockstep
        .iter()
        .filter(|r| !r.expelled.is_empty())
        .map(|r| (r.round, r.expelled.clone()))
        .collect();
    let expelled_pipelined: Vec<(u64, Vec<u32>)> = results
        .iter()
        .filter(|r| !r.expelled.is_empty())
        .map(|r| (r.round, r.expelled.clone()))
        .collect();
    assert_eq!(expelled_lockstep, expelled_pipelined);
}
