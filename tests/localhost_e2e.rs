//! End-to-end over real OS processes: spawn the `dissent-server` binary,
//! parse its bound port, spawn four `dissent-client` binaries, and check
//! that the group completes at least 3 certified rounds with the anonymous
//! post surfacing everywhere.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const ROSTER: &str = "clients = 4\nservers = 1\nseed = 1207\nalpha = 0.5\nsoundness = 4\n";

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dissent-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn drain(child: Child) -> (bool, String) {
    let out = child.wait_with_output().unwrap();
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn binaries_run_a_four_client_group_over_localhost() {
    let dir = tempdir();
    let roster = dir.join("roster.txt");
    let mut f = std::fs::File::create(&roster).unwrap();
    f.write_all(ROSTER.as_bytes()).unwrap();
    drop(f);

    let mut server = Command::new(env!("CARGO_BIN_EXE_dissent-server"))
        .args(["--roster", roster.to_str().unwrap()])
        .args(["--bind", "127.0.0.1:0", "--rounds", "5"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    // The first stdout line announces the bound address.
    let mut stdout = BufReader::new(server.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_string();

    let clients: Vec<Child> = (0..4)
        .map(|i| {
            let mut cmd = Command::new(env!("CARGO_BIN_EXE_dissent-client"));
            cmd.args(["--roster", roster.to_str().unwrap()])
                .args(["--connect", &addr])
                .args(["--index", &i.to_string()])
                .stdout(Stdio::piped())
                .stderr(Stdio::piped());
            if i == 1 {
                cmd.args(["--post", "carried end to end by the binaries"]);
            }
            cmd.spawn().unwrap()
        })
        .collect();

    // Collect the rest of the server's output after the clients run.
    let mut server_rest = String::new();
    for line in stdout.lines() {
        server_rest.push_str(&line.unwrap());
        server_rest.push('\n');
    }
    let status = server.wait().unwrap();
    assert!(status.success(), "server failed:\n{server_rest}");

    let summary = server_rest
        .lines()
        .find(|l| l.starts_with("completed "))
        .unwrap_or_else(|| panic!("no summary line:\n{server_rest}"))
        .to_string();
    let field = |key: &str| -> u64 {
        summary
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing {key} in {summary:?}"))
    };
    assert_eq!(field("rounds"), 5, "{summary}");
    assert!(field("certified") >= 3, "{summary}");
    assert_eq!(field("rejected_spoofs"), 0, "{summary}");
    assert_eq!(field("handshake_failures"), 0, "{summary}");
    assert!(
        server_rest.contains("carried end to end by the binaries"),
        "post missing from server output:\n{server_rest}"
    );

    for (i, client) in clients.into_iter().enumerate() {
        let (ok, text) = drain(client);
        assert!(ok, "client {i} failed:\n{text}");
        assert!(
            text.contains("carried end to end by the binaries"),
            "client {i} never saw the post:\n{text}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// One HTTP/1.0 scrape of the exporter: request, read to EOF, return the
/// body (everything after the blank line).
fn scrape(addr: &str) -> std::io::Result<String> {
    let mut conn = TcpStream::connect(addr)?;
    conn.write_all(b"GET /metrics HTTP/1.0\r\nHost: e2e\r\n\r\n")?;
    let mut response = String::new();
    conn.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "no header/body separator in scrape response",
        )),
    }
}

/// Sum every series of a counter family in a prometheus text snapshot.
fn family_total(snapshot: &str, name: &str) -> u64 {
    snapshot
        .lines()
        .filter(|l| {
            l.strip_prefix(name)
                .is_some_and(|rest| rest.starts_with(' ') || rest.starts_with('{'))
        })
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<u64>().ok())
        .sum()
}

#[test]
fn metrics_endpoint_serves_the_run_and_the_final_snapshot_is_archived() {
    let dir = tempdir();
    let roster = dir.join("roster-metrics.txt");
    std::fs::write(&roster, ROSTER).unwrap();

    let mut server = Command::new(env!("CARGO_BIN_EXE_dissent-server"))
        .args(["--roster", roster.to_str().unwrap()])
        .args(["--bind", "127.0.0.1:0", "--rounds", "5"])
        .args(["--metrics-addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    let mut stdout = BufReader::new(server.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_string();
    line.clear();
    stdout.read_line(&mut line).unwrap();
    let metrics_addr = line
        .trim()
        .strip_prefix("metrics on ")
        .unwrap_or_else(|| panic!("expected metrics line, got: {line:?}"))
        .to_string();

    // Connect three of the four roster clients.  The server blocks in its
    // admission phase waiting for the fourth, which pins a window where the
    // exporter must answer with three accepted handshakes on the books.
    let mut clients: Vec<Child> = (0..3)
        .map(|i| {
            Command::new(env!("CARGO_BIN_EXE_dissent-client"))
                .args(["--roster", roster.to_str().unwrap()])
                .args(["--connect", &addr])
                .args(["--index", &i.to_string()])
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .unwrap()
        })
        .collect();

    let deadline = Instant::now() + Duration::from_secs(30);
    let mut snapshot = String::new();
    while family_total(&snapshot, "dissent_auth_handshakes_total") < 3 {
        assert!(
            Instant::now() < deadline,
            "never saw 3 handshakes; last scrape:\n{snapshot}"
        );
        std::thread::sleep(Duration::from_millis(10));
        if let Ok(body) = scrape(&metrics_addr) {
            snapshot = body;
        }
    }
    assert!(snapshot.contains("# TYPE dissent_auth_handshakes_total counter"));
    assert!(snapshot.contains("# TYPE dissent_transport_bytes_total counter"));
    assert!(family_total(&snapshot, "dissent_transport_frames_total") > 0);

    // Release the admission phase and keep scraping until the server run
    // finishes and the exporter goes away; the last successful scrape is
    // the run's final observable state.
    clients.push(
        Command::new(env!("CARGO_BIN_EXE_dissent-client"))
            .args(["--roster", roster.to_str().unwrap()])
            .args(["--connect", &addr])
            .args(["--index", "3"])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap(),
    );
    while let Ok(body) = scrape(&metrics_addr) {
        snapshot = body;
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut server_rest = String::new();
    for line in stdout.lines() {
        server_rest.push_str(&line.unwrap());
        server_rest.push('\n');
    }
    assert!(
        server.wait().unwrap().success(),
        "server failed:\n{server_rest}"
    );
    for (i, client) in clients.into_iter().enumerate() {
        let (ok, text) = drain(client);
        assert!(ok, "client {i} failed:\n{text}");
    }

    // The exporter outlives the rounds (it stops only after the summary is
    // printed), so the kept snapshot reflects the whole run.
    assert!(
        snapshot.contains("# TYPE dissent_rounds_total counter"),
        "final snapshot lacks round counters:\n{snapshot}"
    );
    assert_eq!(
        family_total(&snapshot, "dissent_auth_handshakes_total"),
        4,
        "final snapshot:\n{snapshot}"
    );
    assert!(snapshot.contains("dissent_round_phase_seconds_bucket"));
    assert_eq!(family_total(&snapshot, "dissent_spoof_rejections_total"), 0);

    // Archive the snapshot where the CI e2e lane picks it up.
    let out_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/e2e-metrics");
    std::fs::create_dir_all(&out_dir).unwrap();
    std::fs::write(out_dir.join("final.prom"), &snapshot).unwrap();

    let _ = std::fs::remove_dir_all(&dir);
}
