//! End-to-end over real OS processes: spawn the `dissent-server` binary,
//! parse its bound port, spawn four `dissent-client` binaries, and check
//! that the group completes at least 3 certified rounds with the anonymous
//! post surfacing everywhere.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

const ROSTER: &str = "clients = 4\nservers = 1\nseed = 1207\nalpha = 0.5\nsoundness = 4\n";

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dissent-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn drain(child: Child) -> (bool, String) {
    let out = child.wait_with_output().unwrap();
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn binaries_run_a_four_client_group_over_localhost() {
    let dir = tempdir();
    let roster = dir.join("roster.txt");
    let mut f = std::fs::File::create(&roster).unwrap();
    f.write_all(ROSTER.as_bytes()).unwrap();
    drop(f);

    let mut server = Command::new(env!("CARGO_BIN_EXE_dissent-server"))
        .args(["--roster", roster.to_str().unwrap()])
        .args(["--bind", "127.0.0.1:0", "--rounds", "5"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    // The first stdout line announces the bound address.
    let mut stdout = BufReader::new(server.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_string();

    let clients: Vec<Child> = (0..4)
        .map(|i| {
            let mut cmd = Command::new(env!("CARGO_BIN_EXE_dissent-client"));
            cmd.args(["--roster", roster.to_str().unwrap()])
                .args(["--connect", &addr])
                .args(["--index", &i.to_string()])
                .stdout(Stdio::piped())
                .stderr(Stdio::piped());
            if i == 1 {
                cmd.args(["--post", "carried end to end by the binaries"]);
            }
            cmd.spawn().unwrap()
        })
        .collect();

    // Collect the rest of the server's output after the clients run.
    let mut server_rest = String::new();
    for line in stdout.lines() {
        server_rest.push_str(&line.unwrap());
        server_rest.push('\n');
    }
    let status = server.wait().unwrap();
    assert!(status.success(), "server failed:\n{server_rest}");

    let summary = server_rest
        .lines()
        .find(|l| l.starts_with("completed "))
        .unwrap_or_else(|| panic!("no summary line:\n{server_rest}"))
        .to_string();
    let field = |key: &str| -> u64 {
        summary
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing {key} in {summary:?}"))
    };
    assert_eq!(field("rounds"), 5, "{summary}");
    assert!(field("certified") >= 3, "{summary}");
    assert_eq!(field("rejected_spoofs"), 0, "{summary}");
    assert_eq!(field("handshake_failures"), 0, "{summary}");
    assert!(
        server_rest.contains("carried end to end by the binaries"),
        "post missing from server output:\n{server_rest}"
    );

    for (i, client) in clients.into_iter().enumerate() {
        let (ok, text) = drain(client);
        assert!(ok, "client {i} failed:\n{text}");
        assert!(
            text.contains("carried end to end by the binaries"),
            "client {i} never saw the post:\n{text}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
