//! Cross-crate integration tests: full Dissent sessions driven end-to-end
//! with real cryptography over the in-memory substrate, exercising the
//! microblog application, churn, disruption handling, and the anonymity of
//! the slot assignment.

use dissent::apps::microblog::{Feed, MicroblogWorkload};
use dissent::protocol::{ClientAction, GroupBuilder, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

fn idle(n: usize) -> Vec<ClientAction> {
    vec![ClientAction::Idle; n]
}

#[test]
fn microblog_session_delivers_every_post_exactly_once() {
    let mut rng = StdRng::seed_from_u64(101);
    let clients = 12;
    let group = GroupBuilder::new(clients, 3)
        .with_shuffle_soundness(4)
        .build();
    let mut session = Session::new(&group, &mut rng).unwrap();
    let workload = MicroblogWorkload {
        post_probability: 0.2,
        post_bytes: 32,
        offline_probability: 0.0,
    };
    let mut feed = Feed::new();
    let mut sent = 0usize;
    for round in 0..10u64 {
        let actions = workload.actions(clients, round, &mut rng);
        sent += actions
            .iter()
            .filter(|a| matches!(a, ClientAction::Send(_)))
            .count();
        let result = session.run_round(&actions, &mut rng);
        assert!(result.certified);
        feed.ingest(&result);
    }
    // Drain any posts still buffered behind slot-open requests.
    for _ in 0..3 {
        let result = session.run_round(&idle(clients), &mut rng);
        feed.ingest(&result);
    }
    assert_eq!(
        feed.len(),
        sent,
        "every accepted post is delivered exactly once"
    );
    // No two posts in the same round share a slot.
    let mut seen = HashSet::new();
    for post in &feed.posts {
        assert!(seen.insert((post.round, post.slot)));
    }
}

#[test]
fn slot_assignment_is_a_secret_permutation() {
    // Two sessions over the same roster (different randomness) produce
    // different slot assignments, and within a session the assignment is a
    // bijection — the property the key shuffle must provide.
    let group = GroupBuilder::new(9, 2).with_shuffle_soundness(4).build();
    let s1 = Session::new(&group, &mut StdRng::seed_from_u64(1)).unwrap();
    let s2 = Session::new(&group, &mut StdRng::seed_from_u64(2)).unwrap();
    let perm1: Vec<usize> = (0..9).map(|c| s1.slot_of_client(c)).collect();
    let perm2: Vec<usize> = (0..9).map(|c| s2.slot_of_client(c)).collect();
    let mut sorted = perm1.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..9).collect::<Vec<_>>());
    assert_ne!(
        perm1, perm2,
        "the permutation depends on the shuffle randomness"
    );
}

#[test]
fn churn_never_blocks_progress_and_threshold_tracks_participation() {
    let mut rng = StdRng::seed_from_u64(55);
    let clients = 10;
    let group = GroupBuilder::new(clients, 2)
        .with_shuffle_soundness(4)
        .with_alpha(0.9)
        .build();
    let mut session = Session::new(&group, &mut rng).unwrap();
    // Round 0: everyone online.
    let r0 = session.run_round(&idle(clients), &mut rng);
    assert_eq!(r0.participation, clients);
    // Round 1: four clients vanish mid-protocol; the servers still complete
    // the round with the remaining six.
    let mut actions = idle(clients);
    for a in actions.iter_mut().take(4) {
        *a = ClientAction::Offline;
    }
    let mut sender = idle(clients);
    sender[7] = ClientAction::Send(b"still alive".to_vec());
    let _ = session.run_round(&sender, &mut rng);
    let r1 = session.run_round(&actions, &mut rng);
    assert_eq!(r1.participation, 6);
    assert!(r1.certified);
    // The α threshold for the next round is 90% of the *observed* count.
    assert_eq!(r1.required_participation, 6);
    // The buffered message from client 7 still arrives despite the churn.
    let delivered: Vec<_> = r1
        .messages
        .iter()
        .chain(session.run_round(&idle(clients), &mut rng).messages.iter())
        .map(|(_, m)| m.clone())
        .collect();
    assert!(delivered.contains(&b"still alive".to_vec()));
}

#[test]
fn disruptor_expelled_and_group_recovers() {
    let mut rng = StdRng::seed_from_u64(77);
    let clients = 6;
    let group = GroupBuilder::new(clients, 2)
        .with_shuffle_soundness(4)
        .build();
    let mut session = Session::new(&group, &mut rng).unwrap();

    // Victim opens its slot.
    let mut actions = idle(clients);
    actions[0] = ClientAction::Send(b"whistleblower report".to_vec());
    session.run_round(&actions, &mut rng);

    // The disruptor jams the victim's slot until the blame process catches it.
    let victim_slot = session.slot_of_client(0);
    let mut expelled = Vec::new();
    for _ in 0..5 {
        let mut actions = idle(clients);
        actions[3] = ClientAction::Disrupt { victim_slot };
        let r = session.run_round(&actions, &mut rng);
        expelled.extend(r.expelled);
        if !expelled.is_empty() {
            break;
        }
    }
    assert_eq!(expelled, vec![3]);

    // After expulsion the victim retransmits successfully (the message goes
    // out in whichever of the next rounds its slot is open for).
    let mut actions = idle(clients);
    actions[0] = ClientAction::Send(b"whistleblower report".to_vec());
    let mut delivered: Vec<Vec<u8>> = Vec::new();
    let r = session.run_round(&actions, &mut rng);
    delivered.extend(r.messages.into_iter().map(|(_, m)| m));
    for _ in 0..3 {
        let r = session.run_round(&idle(clients), &mut rng);
        delivered.extend(r.messages.into_iter().map(|(_, m)| m));
    }
    assert!(delivered.contains(&b"whistleblower report".to_vec()));
    // The honest clients were never expelled.
    assert_eq!(session.expelled().len(), 1);
}

#[test]
fn large_messages_grow_the_slot_and_arrive_intact() {
    let mut rng = StdRng::seed_from_u64(31);
    let clients = 5;
    let group = GroupBuilder::new(clients, 2)
        .with_shuffle_soundness(4)
        .build();
    let mut session = Session::new(&group, &mut rng).unwrap();
    let big: Vec<u8> = (0..4096u32).flat_map(|i| i.to_be_bytes()).collect(); // 16 KiB
    let mut actions = idle(clients);
    actions[2] = ClientAction::Send(big.clone());
    session.run_round(&actions, &mut rng); // request
    let mut delivered = Vec::new();
    for _ in 0..4 {
        let r = session.run_round(&idle(clients), &mut rng);
        delivered.extend(r.messages.into_iter().map(|(_, m)| m));
        if !delivered.is_empty() {
            break;
        }
    }
    assert_eq!(delivered, vec![big]);
}
