//! Cross-crate integration tests: full Dissent sessions driven end-to-end
//! with real cryptography over the in-memory substrate, exercising the
//! microblog application, churn, disruption handling, and the anonymity of
//! the slot assignment.

use dissent::apps::microblog::{Feed, MicroblogWorkload};
use dissent::crypto::dh::DhKeyPair;
use dissent::crypto::elgamal::ElGamal;
use dissent::crypto::group::{Element, Group, Scalar};
use dissent::protocol::{ClientAction, GroupBuilder, Session};
use dissent::shuffle::pass::PassError;
use dissent::shuffle::protocol::{
    run_shuffle, submit_element, verify_transcript, ShuffleTranscript, TranscriptError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

fn idle(n: usize) -> Vec<ClientAction> {
    vec![ClientAction::Idle; n]
}

#[test]
fn microblog_session_delivers_every_post_exactly_once() {
    let mut rng = StdRng::seed_from_u64(101);
    let clients = 12;
    let group = GroupBuilder::new(clients, 3)
        .with_shuffle_soundness(4)
        .build();
    let mut session = Session::new(&group, &mut rng).unwrap();
    let workload = MicroblogWorkload {
        post_probability: 0.2,
        post_bytes: 32,
        offline_probability: 0.0,
    };
    let mut feed = Feed::new();
    let mut sent = 0usize;
    for round in 0..10u64 {
        let actions = workload.actions(clients, round, &mut rng);
        sent += actions
            .iter()
            .filter(|a| matches!(a, ClientAction::Send(_)))
            .count();
        let result = session.run_round(&actions, &mut rng);
        assert!(result.certified);
        feed.ingest(&result);
    }
    // Drain any posts still buffered behind slot-open requests.
    for _ in 0..3 {
        let result = session.run_round(&idle(clients), &mut rng);
        feed.ingest(&result);
    }
    assert_eq!(
        feed.len(),
        sent,
        "every accepted post is delivered exactly once"
    );
    // No two posts in the same round share a slot.
    let mut seen = HashSet::new();
    for post in &feed.posts {
        assert!(seen.insert((post.round, post.slot)));
    }
}

#[test]
fn slot_assignment_is_a_secret_permutation() {
    // Two sessions over the same roster (different randomness) produce
    // different slot assignments, and within a session the assignment is a
    // bijection — the property the key shuffle must provide.
    let group = GroupBuilder::new(9, 2).with_shuffle_soundness(4).build();
    let s1 = Session::new(&group, &mut StdRng::seed_from_u64(1)).unwrap();
    let s2 = Session::new(&group, &mut StdRng::seed_from_u64(2)).unwrap();
    let perm1: Vec<usize> = (0..9).map(|c| s1.slot_of_client(c)).collect();
    let perm2: Vec<usize> = (0..9).map(|c| s2.slot_of_client(c)).collect();
    let mut sorted = perm1.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..9).collect::<Vec<_>>());
    assert_ne!(
        perm1, perm2,
        "the permutation depends on the shuffle randomness"
    );
}

#[test]
fn churn_never_blocks_progress_and_threshold_tracks_participation() {
    let mut rng = StdRng::seed_from_u64(55);
    let clients = 10;
    let group = GroupBuilder::new(clients, 2)
        .with_shuffle_soundness(4)
        .with_alpha(0.9)
        .build();
    let mut session = Session::new(&group, &mut rng).unwrap();
    // Round 0: everyone online.
    let r0 = session.run_round(&idle(clients), &mut rng);
    assert_eq!(r0.participation, clients);
    // Round 1: four clients vanish mid-protocol; the servers still complete
    // the round with the remaining six.
    let mut actions = idle(clients);
    for a in actions.iter_mut().take(4) {
        *a = ClientAction::Offline;
    }
    let mut sender = idle(clients);
    sender[7] = ClientAction::Send(b"still alive".to_vec());
    let _ = session.run_round(&sender, &mut rng);
    let r1 = session.run_round(&actions, &mut rng);
    assert_eq!(r1.participation, 6);
    assert!(r1.certified);
    // The α threshold for the next round is 90% of the *observed* count.
    assert_eq!(r1.required_participation, 6);
    // The buffered message from client 7 still arrives despite the churn.
    let delivered: Vec<_> = r1
        .messages
        .iter()
        .chain(session.run_round(&idle(clients), &mut rng).messages.iter())
        .map(|(_, m)| m.clone())
        .collect();
    assert!(delivered.contains(&b"still alive".to_vec()));
}

#[test]
fn disruptor_expelled_and_group_recovers() {
    let mut rng = StdRng::seed_from_u64(77);
    let clients = 6;
    let group = GroupBuilder::new(clients, 2)
        .with_shuffle_soundness(4)
        .build();
    let mut session = Session::new(&group, &mut rng).unwrap();

    // Victim opens its slot.
    let mut actions = idle(clients);
    actions[0] = ClientAction::Send(b"whistleblower report".to_vec());
    session.run_round(&actions, &mut rng);

    // The disruptor jams the victim's slot until the blame process catches it.
    let victim_slot = session.slot_of_client(0);
    let mut expelled = Vec::new();
    for _ in 0..5 {
        let mut actions = idle(clients);
        actions[3] = ClientAction::Disrupt { victim_slot };
        let r = session.run_round(&actions, &mut rng);
        expelled.extend(r.expelled);
        if !expelled.is_empty() {
            break;
        }
    }
    assert_eq!(expelled, vec![3]);

    // After expulsion the victim retransmits successfully (the message goes
    // out in whichever of the next rounds its slot is open for).
    let mut actions = idle(clients);
    actions[0] = ClientAction::Send(b"whistleblower report".to_vec());
    let mut delivered: Vec<Vec<u8>> = Vec::new();
    let r = session.run_round(&actions, &mut rng);
    delivered.extend(r.messages.into_iter().map(|(_, m)| m));
    for _ in 0..3 {
        let r = session.run_round(&idle(clients), &mut rng);
        delivered.extend(r.messages.into_iter().map(|(_, m)| m));
    }
    assert!(delivered.contains(&b"whistleblower report".to_vec()));
    // The honest clients were never expelled.
    assert_eq!(session.expelled().len(), 1);
}

/// Build a verified 3-server, 6-client key-shuffle transcript for tampering.
fn shuffle_fixture() -> (Group, Vec<Element>, ShuffleTranscript) {
    let group = Group::testing_256();
    let mut rng = StdRng::seed_from_u64(0x7A);
    let servers: Vec<DhKeyPair> = (0..3)
        .map(|_| DhKeyPair::generate(&group, &mut rng))
        .collect();
    let server_keys: Vec<Element> = servers.iter().map(|s| s.public().clone()).collect();
    let elgamal = ElGamal::new(group.clone());
    let submissions: Vec<_> = (0..6)
        .map(|_| {
            let k = group.exp_base(&group.random_scalar(&mut rng));
            submit_element(&elgamal, &server_keys, &k, &mut rng)
        })
        .collect();
    let transcript = run_shuffle(&group, &servers, submissions, 8, b"audit", &mut rng).unwrap();
    assert!(verify_transcript(&group, &server_keys, &transcript, b"audit").is_ok());
    (group, server_keys, transcript)
}

#[test]
fn shuffle_transcript_tamper_matrix_rejects_every_mutation() {
    // The DLEQ proofs inside verify_transcript are now checked as one batch
    // per pass; this matrix proves the batched path did not weaken the
    // transcript binding — every single-field mutation is rejected, and the
    // reported pass/entry indices point at exactly the mutated field.
    let (group, server_keys, transcript) = shuffle_fixture();
    let audit = |t: &ShuffleTranscript| verify_transcript(&group, &server_keys, t, b"audit");

    // 1. A permuted (shuffled) ciphertext in pass 1 is replaced.
    let mut t = transcript.clone();
    t.passes[1].shuffled[2].c2 = group.mul(&t.passes[1].shuffled[2].c2, &group.generator());
    match audit(&t) {
        Err(TranscriptError::Pass { pass: 1, .. }) => {}
        other => panic!("tampered shuffled ciphertext: got {other:?}"),
    }

    // 2. A DLEQ response in pass 2 is bumped; blame names pass 2, entry 4.
    let mut t = transcript.clone();
    t.passes[2].decryption_proofs[4].response =
        group.scalar_add(&t.passes[2].decryption_proofs[4].response, &Scalar::one());
    assert_eq!(
        audit(&t),
        Err(TranscriptError::Pass {
            pass: 2,
            error: PassError::DecryptionProof { entry: 4 }
        })
    );

    // 3. A decryption share is tampered; its proof no longer matches.
    let mut t = transcript.clone();
    t.passes[0].decryption_shares[1] =
        group.mul(&t.passes[0].decryption_shares[1], &group.generator());
    assert_eq!(
        audit(&t),
        Err(TranscriptError::Pass {
            pass: 0,
            error: PassError::DecryptionProof { entry: 1 }
        })
    );

    // 4. A stripped ciphertext is tampered consistently with nothing.
    let mut t = transcript.clone();
    t.passes[2].stripped[3].c2 = group.mul(&t.passes[2].stripped[3].c2, &group.generator());
    assert_eq!(
        audit(&t),
        Err(TranscriptError::Pass {
            pass: 2,
            error: PassError::StrippedEntry { entry: 3 }
        })
    );

    // 5. Pass ordering: swapping two passes is flagged at the first
    //    out-of-order position.
    let mut t = transcript.clone();
    t.passes.swap(0, 1);
    assert_eq!(
        audit(&t),
        Err(TranscriptError::PassOrder {
            pass: 0,
            server_index: 1
        })
    );

    // 6. Dropping a pass entirely.
    let mut t = transcript.clone();
    t.passes.pop();
    assert_eq!(
        audit(&t),
        Err(TranscriptError::PassCount {
            expected: 3,
            got: 2
        })
    );

    // 7. A shadow inside a shuffle proof is replaced: the cut-and-choose
    //    argument of that pass fails.
    let mut t = transcript.clone();
    t.passes[1].shuffle_proof.shadows[0][0].c1 = group.generator();
    match audit(&t) {
        Err(TranscriptError::Pass {
            pass: 1,
            error: PassError::Shuffle(_),
        }) => {}
        other => panic!("tampered shadow: got {other:?}"),
    }

    // 8. A client submission is swapped out from under the first pass.
    let mut t = transcript.clone();
    t.submissions[0].c2 = group.mul(&t.submissions[0].c2, &group.generator());
    match audit(&t) {
        Err(TranscriptError::Pass { pass: 0, .. }) => {}
        other => panic!("tampered submission: got {other:?}"),
    }

    // 9. The revealed output is reordered.
    let mut t = transcript.clone();
    t.output.swap(0, 5);
    assert_eq!(audit(&t), Err(TranscriptError::OutputMismatch));

    // 10. The untampered transcript still verifies (the matrix above did not
    //     mutate shared state).
    assert!(audit(&transcript).is_ok());
}

#[test]
fn large_messages_grow_the_slot_and_arrive_intact() {
    let mut rng = StdRng::seed_from_u64(31);
    let clients = 5;
    let group = GroupBuilder::new(clients, 2)
        .with_shuffle_soundness(4)
        .build();
    let mut session = Session::new(&group, &mut rng).unwrap();
    let big: Vec<u8> = (0..4096u32).flat_map(|i| i.to_be_bytes()).collect(); // 16 KiB
    let mut actions = idle(clients);
    actions[2] = ClientAction::Send(big.clone());
    session.run_round(&actions, &mut rng); // request
    let mut delivered = Vec::new();
    for _ in 0..4 {
        let r = session.run_round(&idle(clients), &mut rng);
        delivered.extend(r.messages.into_iter().map(|(_, m)| m));
        if !delivered.is_empty() {
            break;
        }
    }
    assert_eq!(delivered, vec![big]);
}
