//! Offline stand-in for `proptest`: deterministic random-input testing with
//! the subset of the proptest 1.x surface this repository uses.
//!
//! Supported: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, [`prelude::any`] for integers and
//! byte arrays, integer range strategies (`0u64..1000`, `1u128..`,
//! `0usize..=60`), [`collection::vec`], and string strategies given as a
//! character-class regex subset (`"[1-9a-f][0-9a-f]{10,80}"`).
//!
//! Unsupported (not needed here): shrinking, persistence of failing cases,
//! `prop_compose!`, filters.  Failing inputs are printed in the panic
//! message instead of shrunk.  Case generation is seeded from the test
//! name, so runs are reproducible.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod prelude {
    //! The glob-importable API surface.
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                let mut bytes = [0u8; std::mem::size_of::<$t>()];
                rng.fill_bytes(&mut bytes);
                <$t>::from_le_bytes(bytes)
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl<T: Arbitrary + Default + Copy, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mut out = [T::default(); N];
        for slot in out.iter_mut() {
            *slot = T::arbitrary(rng);
        }
        out
    }
}

/// Strategy wrapper produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for `T`: any representable value.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                // Unbounded above: rejection-sample the full domain.  The
                // lower bounds used in practice are tiny, so this terminates
                // immediately with overwhelming probability.
                loop {
                    let v = <$t as Arbitrary>::arbitrary(rng);
                    if v >= self.start {
                        return v;
                    }
                }
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, u128, usize, i32, i64);

/// String strategies: a regex subset of character classes (`[a-f0-9]`),
/// literal characters, and `{m}` / `{m,n}` repetition.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        sample_regex_subset(self, rng)
    }
}

fn sample_regex_subset(pattern: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .expect("unterminated character class in strategy pattern")
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    for c in lo..=hi {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        assert!(
            !class.is_empty(),
            "empty character class in strategy pattern"
        );

        // Optional repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repetition in strategy pattern")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim()
                        .parse::<usize>()
                        .expect("bad repetition lower bound"),
                    hi.trim()
                        .parse::<usize>()
                        .expect("bad repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };

        let count = rng.gen_range(min..=max);
        for _ in 0..count {
            out.push(class[rng.gen_range(0..class.len())]);
        }
    }
    out
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-test RNG, seeded from the test's name.
pub fn test_rng(name: &str) -> StdRng {
    // FNV-1a over the name; any stable hash works.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Define property tests: each case draws fresh inputs from the given
/// strategies and runs the body; a failed `prop_assert*!` reports the
/// drawn inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)* ""),
                    $(&$arg),*
                );
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    Ok(())
                })();
                if let Err(message) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        config.cases,
                        message,
                        inputs
                    );
                }
            }
        }
    )*};
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regex_subset_matches_shape() {
        let mut rng = test_rng("regex");
        for _ in 0..200 {
            let s = sample_regex_subset("[1-9a-f][0-9a-f]{10,80}", &mut rng);
            assert!((11..=81).contains(&s.len()));
            let first = s.chars().next().unwrap();
            assert!(('1'..='9').contains(&first) || ('a'..='f').contains(&first));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        }
        let lit = sample_regex_subset("ab{3}c", &mut rng);
        assert_eq!(lit, "abbbc");
    }

    #[test]
    fn strategies_respect_bounds() {
        let mut rng = test_rng("bounds");
        for _ in 0..200 {
            assert!((0u64..10).generate(&mut rng) < 10);
            assert!((1u128..).generate(&mut rng) >= 1);
            let v = collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(a in any::<u32>(), b in 0usize..9, s in "[0-3]{2,4}") {
            prop_assert!(b < 9);
            prop_assert_eq!(a, a);
            prop_assert_ne!(s.len(), 0);
        }
    }
}
