//! No-op `Serialize` / `Deserialize` derives for the vendored serde shim.
//!
//! The shim's traits are blanket-implemented, so the derives only need to
//! accept the item (including `#[serde(...)]` helper attributes) and emit
//! nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
