//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the *subset* of the `rand` 0.8 API the
//! code actually uses: [`RngCore`], [`Rng`] (`gen_range` / `gen_bool`),
//! [`SeedableRng`], [`rngs::StdRng`], and [`seq::SliceRandom`].
//!
//! [`rngs::StdRng`] here is xoshiro256++ rather than ChaCha12; it is used
//! only to drive tests, simulations and benchmarks, never as a protocol
//! secret source (the protocol's own deterministic PRNG is ChaCha20-based
//! and lives in `dissent-crypto`).  Streams are deterministic per seed
//! within this implementation but do not match upstream `rand`.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by this shim).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; the shim never fails.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Marker trait for cryptographically strong generators.
pub trait CryptoRng {}

/// A type that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<u128> for Range<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = self.end - self.start;
        let v = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
        self.start + v % span
    }
}

impl SampleRange<u128> for RangeInclusive<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let v = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
        if lo == 0 && hi == u128::MAX {
            return v;
        }
        lo + v % (hi - lo + 1)
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // 53 (resp. 24) uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded with SplitMix64 as upstream does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.
    //!
    //! Deliberately NOT marked [`CryptoRng`](super::CryptoRng): xoshiro256++
    //! is a statistical PRNG, and keeping the marker off means any future
    //! API that bounds its generator with `R: CryptoRng` will reject this
    //! shim at compile time instead of silently feeding protocol secrets
    //! from a weak source.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator with the `StdRng` interface (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro; remap it.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let neg = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
