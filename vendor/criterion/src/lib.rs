//! Offline stand-in for `criterion`: a wall-clock micro-benchmark harness
//! exposing the subset of the criterion 0.5 API the `dissent-bench` crate
//! uses (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Throughput`, `BenchmarkId`).
//!
//! Instead of criterion's statistical machinery, each benchmark is warmed
//! up once and then timed over an adaptive number of iterations bounded by
//! a per-benchmark time budget; the mean per-iteration time (and derived
//! throughput) is printed.  That is enough to compare implementations —
//! e.g. naive vs. Montgomery modular exponentiation — without any external
//! dependencies.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-benchmark measurement budget after warm-up.
const TIME_BUDGET: Duration = Duration::from_millis(400);
/// Hard cap on measured iterations within the budget.
const MAX_ITERS: u64 = 10_000;

/// Top-level benchmark driver.
pub struct Criterion {
    _sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _sample_size: 100 }
    }
}

impl Criterion {
    /// Set the nominal sample size (accepted for API compatibility).
    pub fn sample_size(mut self, n: usize) -> Self {
        self._sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, f);
        self
    }
}

/// A named collection of benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used to derive rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the nominal sample size (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the nominal measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), self.throughput, f);
        self
    }

    /// Run a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A function name plus parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A bare parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Per-iteration work volume, used to derive throughput rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measure `routine` over an adaptive number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up iteration, also used to scale the measured batch.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));

        let planned = (TIME_BUDGET.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let start = Instant::now();
        for _ in 0..planned {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = planned;
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{name:<50} (no measurement)");
        return;
    }
    let per_iter = bencher.total / bencher.iters as u32;
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            let secs = per_iter.as_secs_f64();
            format!("  {:>10.1} MiB/s", b as f64 / secs / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(e)) => {
            let secs = per_iter.as_secs_f64();
            format!("  {:>10.1} elem/s", e as f64 / secs)
        }
        None => String::new(),
    };
    println!(
        "{name:<50} time: {:>12}   ({} iters){rate}",
        format_duration(per_iter),
        bencher.iters
    );
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_prints() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(64));
        g.bench_function("noop", |b| b.iter(|| 2u64 + 2));
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
