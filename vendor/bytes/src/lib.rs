//! Offline stand-in for the `bytes` crate: the [`Buf`] / [`BufMut`] /
//! [`BytesMut`] subset used by the SOCKS frame codec.  Integers are
//! big-endian, matching upstream.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Read-side cursor over a byte source.
///
/// Each getter consumes from the front; callers must check `remaining()`
/// (or slice length) first, as upstream `bytes` panics on underflow too.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write-side sink for bytes.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Consume the buffer, yielding its bytes.
    pub fn freeze(self) -> Vec<u8> {
        self.inner
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_slice(b"tail");
        let v = buf.to_vec();
        let mut r = &v[..];
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r, b"tail");
        r.advance(4);
        assert_eq!(r.remaining(), 0);
    }
}
