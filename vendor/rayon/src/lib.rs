//! Offline API-compatible subset of the `rayon` crate.
//!
//! The build environment has no crates-registry access, so this shim
//! provides the slice-parallelism surface the workspace actually uses —
//! [`scope`]/[`Scope::spawn`], [`join`], [`current_num_threads`], and the
//! `par_chunks`/`par_chunks_mut` slice adapters of [`prelude`] — over a
//! small global pool of OS threads.  If registry access ever appears, the
//! real `rayon` is a drop-in replacement (see vendor/README.md).
//!
//! Design notes:
//!
//! * One lazily-started global pool; worker count is
//!   `RAYON_NUM_THREADS` (if set and positive) or
//!   `std::thread::available_parallelism()`.
//! * [`scope`] blocks until every task spawned inside it has finished, which
//!   is what makes lending non-`'static` borrows to tasks sound (the same
//!   contract as rayon/crossbeam scopes).
//! * Threads that wait on a scope *help*: they pull queued tasks — anyone's
//!   tasks — and run them while waiting, so nested scopes cannot deadlock
//!   the fixed-size pool.
//! * Task panics are captured and re-thrown from the scope owner, after all
//!   sibling tasks have completed.
//!
//! Nothing here is load-balanced as finely as real rayon (no work stealing
//! deques, no splitting adaptively); callers shard work into roughly
//! per-thread chunks, which is exactly how the DC-net and batch-verification
//! hot paths use it.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

pub mod slice;

/// Re-exports mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled on task push *and* on scope completion; workers and scope
    /// waiters share it.
    cond: Condvar,
    threads: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        for i in 0..threads {
            thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(worker_loop)
                .expect("failed to spawn pool worker");
        }
        Pool {
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            threads,
        }
    })
}

fn worker_loop() {
    // Blocks until the pool finishes initializing, then serves forever; the
    // threads are daemons that die with the process.
    let p = pool();
    loop {
        let job = {
            let mut q = p.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = p.cond.wait(q).expect("pool queue poisoned");
            }
        };
        // Scope jobs catch their own panics; this is a backstop so a stray
        // panic can never kill a worker.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

/// Number of worker threads in the global pool.
pub fn current_num_threads() -> usize {
    pool().threads
}

struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// A scope in which non-`'static` tasks may be spawned (subset of
/// `rayon::Scope`).
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    // Invariant over 'scope, as in rayon: prevents shortening the lifetime.
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawn a task that may borrow from the enclosing [`scope`] call.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let task_scope = Scope {
            state: self.state.clone(),
            _marker: PhantomData,
        };
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&task_scope))) {
                let mut slot = task_scope.state.panic.lock().expect("panic slot poisoned");
                slot.get_or_insert(payload);
            }
            finish_one(&task_scope.state);
        });
        // SAFETY: `scope` does not return until `pending` reaches zero, so
        // every borrow with lifetime 'scope strictly outlives the job.  This
        // is the standard scoped-pool lifetime erasure (crossbeam/rayon).
        let job: Job = unsafe { std::mem::transmute(job) };
        let p = pool();
        let mut q = p.queue.lock().expect("pool queue poisoned");
        q.push_back(job);
        p.cond.notify_all();
    }
}

fn finish_one(state: &ScopeState) {
    let p = pool();
    // Taking the queue lock orders the decrement against a waiter's
    // "pending > 0, nothing queued → sleep" check, preventing lost wakeups.
    let _guard = p.queue.lock().expect("pool queue poisoned");
    if state.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
        p.cond.notify_all();
    }
}

/// Create a scope, run `f` in it, and block until every task spawned inside
/// has completed (subset of `rayon::scope`).
///
/// While blocked, the calling thread executes queued tasks, so scopes nest
/// without deadlocking the fixed-size pool.  The first task panic (or the
/// closure's own panic) is re-thrown after all tasks finish.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let state = Arc::new(ScopeState {
        pending: AtomicUsize::new(0),
        panic: Mutex::new(None),
    });
    let s = Scope {
        state: state.clone(),
        _marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&s)));
    wait_until_done(&state);
    if let Some(payload) = state.panic.lock().expect("panic slot poisoned").take() {
        resume_unwind(payload);
    }
    match result {
        Ok(r) => r,
        Err(payload) => resume_unwind(payload),
    }
}

fn wait_until_done(state: &ScopeState) {
    let p = pool();
    loop {
        let job = {
            let mut q = p.queue.lock().expect("pool queue poisoned");
            loop {
                if state.pending.load(Ordering::SeqCst) == 0 {
                    return;
                }
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = p.cond.wait(q).expect("pool queue poisoned");
            }
        };
        job();
    }
}

/// Run two closures, potentially in parallel, and return both results
/// (subset of `rayon::join`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb: Option<RB> = None;
    let rb_ref = &mut rb;
    let ra = scope(move |s| {
        s.spawn(move |_| {
            *rb_ref = Some(b());
        });
        a()
    });
    (ra, rb.expect("join: second closure did not run"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn force_multithreaded() {
        // Every pool-touching test sets this before first pool use, so the
        // lazily-created pool is multi-threaded even on a 1-core CI box.
        std::env::set_var("RAYON_NUM_THREADS", "4");
    }

    #[test]
    fn scope_runs_all_tasks_and_borrows_stack_data() {
        force_multithreaded();
        let data: Vec<u64> = (0..1000).collect();
        let total = AtomicU64::new(0);
        scope(|s| {
            for chunk in data.chunks(100) {
                let total = &total;
                s.spawn(move |_| {
                    total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.into_inner(), 1000 * 999 / 2);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        force_multithreaded();
        let hits = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                let hits = &hits;
                s.spawn(move |_| {
                    scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(move |_| {
                                hits.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(hits.into_inner(), 64);
    }

    #[test]
    fn tasks_can_spawn_siblings() {
        force_multithreaded();
        let hits = AtomicUsize::new(0);
        scope(|s| {
            let hits = &hits;
            s.spawn(move |s| {
                hits.fetch_add(1, Ordering::Relaxed);
                s.spawn(move |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(hits.into_inner(), 2);
    }

    #[test]
    fn scope_propagates_task_panic() {
        force_multithreaded();
        let result = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|_| panic!("task exploded"));
            });
        }));
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "task exploded");
    }

    #[test]
    fn join_returns_both_results() {
        force_multithreaded();
        let (a, b) = join(|| 6 * 7, || "anonymity".len());
        assert_eq!((a, b), (42, 9));
    }

    #[test]
    fn current_num_threads_is_positive() {
        force_multithreaded();
        assert!(current_num_threads() >= 1);
    }
}
