//! Slice parallelism: `par_chunks` / `par_chunks_mut` (subset of
//! `rayon::slice`).
//!
//! The adapters mirror the call shapes of real rayon —
//! `data.par_chunks(n).map(f).collect_into_vec(&mut out)`,
//! `data.par_chunks_mut(n).for_each(f)`,
//! `data.par_chunks(n).enumerate().map(f)` — but only those shapes: they are
//! eager mini-pipelines over the scoped pool, not lazy parallel iterators.
//! Chunks are dispatched one task per chunk, so callers pick a chunk size
//! around `len.div_ceil(current_num_threads())`.
//!
//! When the pool has a single worker (or there is a single chunk) everything
//! degenerates to a plain serial loop with no task overhead.  Results are
//! collected by chunk index, so output order never depends on scheduling.

use std::sync::Mutex;

/// `par_chunks` on shared slices (subset of `rayon::slice::ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Split into chunks of `chunk_size` (last may be shorter), processed in
    /// parallel.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "par_chunks: chunk size must be positive");
        ParChunks {
            slice: self,
            size: chunk_size,
        }
    }
}

/// `par_chunks_mut` on mutable slices (subset of
/// `rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Split into mutable chunks of `chunk_size` (last may be shorter),
    /// processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(
            chunk_size > 0,
            "par_chunks_mut: chunk size must be positive"
        );
        ParChunksMut {
            slice: self,
            size: chunk_size,
        }
    }
}

/// Parallel shared chunks of a slice.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    /// Pair every chunk with its chunk index.
    pub fn enumerate(self) -> ParChunksEnumerate<'a, T> {
        ParChunksEnumerate(self)
    }

    /// Run `f` on every chunk.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }

    /// Map every chunk through `f`; results are gathered with
    /// [`ParMap::collect_into_vec`] in chunk order.
    #[allow(clippy::type_complexity)]
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, R, impl Fn((usize, &'a [T])) -> R + Sync>
    where
        R: Send,
        F: Fn(&'a [T]) -> R + Sync,
    {
        self.enumerate()
            .map(move |(_, chunk): (usize, &'a [T])| f(chunk))
    }
}

/// Parallel shared chunks paired with their chunk index.
pub struct ParChunksEnumerate<'a, T>(ParChunks<'a, T>);

impl<'a, T: Sync> ParChunksEnumerate<'a, T> {
    /// Run `f` on every `(chunk_index, chunk)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a [T])) + Sync,
    {
        self.map(f).run_discard();
    }

    /// Map every `(chunk_index, chunk)` pair through `f`.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, R, F>
    where
        R: Send,
        F: Fn((usize, &'a [T])) -> R + Sync,
    {
        ParMap {
            chunks: self.0,
            f,
            _result: std::marker::PhantomData,
        }
    }
}

/// The pending result of mapping chunks in parallel.
pub struct ParMap<'a, T, R, F> {
    chunks: ParChunks<'a, T>,
    f: F,
    _result: std::marker::PhantomData<R>,
}

impl<'a, T, R, F> ParMap<'a, T, R, F>
where
    T: Sync,
    R: Send,
    F: Fn((usize, &'a [T])) -> R + Sync,
{
    /// Execute the map and write the per-chunk results into `out` in chunk
    /// order (mirrors `IndexedParallelIterator::collect_into_vec`).
    pub fn collect_into_vec(self, out: &mut Vec<R>) {
        out.clear();
        let ParMap { chunks, f, .. } = self;
        let n_chunks = chunks.slice.len().div_ceil(chunks.size.max(1));
        if n_chunks <= 1 || crate::current_num_threads() <= 1 {
            out.extend(chunks.slice.chunks(chunks.size).enumerate().map(&f));
            return;
        }
        // One mutex-guarded slot per chunk: each slot is written exactly
        // once, and chunk counts are ~thread counts, so contention is nil.
        let slots: Vec<Mutex<Option<R>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
        crate::scope(|s| {
            for (i, chunk) in chunks.slice.chunks(chunks.size).enumerate() {
                let slot = &slots[i];
                let f = &f;
                s.spawn(move |_| {
                    *slot.lock().expect("result slot poisoned") = Some(f((i, chunk)));
                });
            }
        });
        out.extend(slots.into_iter().map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("chunk task did not run")
        }));
    }

    fn run_discard(self) {
        let ParMap { chunks, f, .. } = self;
        let n_chunks = chunks.slice.len().div_ceil(chunks.size.max(1));
        if n_chunks <= 1 || crate::current_num_threads() <= 1 {
            for pair in chunks.slice.chunks(chunks.size).enumerate() {
                f(pair);
            }
            return;
        }
        crate::scope(|s| {
            for (i, chunk) in chunks.slice.chunks(chunks.size).enumerate() {
                let f = &f;
                s.spawn(move |_| {
                    f((i, chunk));
                });
            }
        });
    }
}

/// Parallel mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its chunk index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate(self)
    }

    /// Run `f` on every chunk.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Parallel mutable chunks paired with their chunk index.
pub struct ParChunksMutEnumerate<'a, T>(ParChunksMut<'a, T>);

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Run `f` on every `(chunk_index, chunk)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let ParChunksMut { slice, size } = self.0;
        let n_chunks = slice.len().div_ceil(size.max(1));
        if n_chunks <= 1 || crate::current_num_threads() <= 1 {
            for (i, c) in slice.chunks_mut(size).enumerate() {
                f((i, c));
            }
            return;
        }
        crate::scope(|s| {
            for (i, chunk) in slice.chunks_mut(size).enumerate() {
                let f = &f;
                s.spawn(move |_| {
                    f((i, chunk));
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn force_multithreaded() {
        std::env::set_var("RAYON_NUM_THREADS", "4");
    }

    #[test]
    fn par_chunks_map_collects_in_order() {
        force_multithreaded();
        let data: Vec<u32> = (0..103).collect();
        for chunk in [1usize, 7, 50, 103, 500] {
            let mut sums: Vec<u32> = Vec::new();
            data.par_chunks(chunk)
                .map(|c| c.iter().sum())
                .collect_into_vec(&mut sums);
            let expected: Vec<u32> = data.chunks(chunk).map(|c| c.iter().sum()).collect();
            assert_eq!(sums, expected, "chunk size {chunk}");
        }
    }

    #[test]
    fn par_chunks_enumerate_sees_every_index() {
        force_multithreaded();
        let data = [0u8; 40];
        let mut idx: Vec<usize> = Vec::new();
        data.par_chunks(7)
            .enumerate()
            .map(|(i, _)| i)
            .collect_into_vec(&mut idx);
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        force_multithreaded();
        let mut data = vec![0u64; 1000];
        data.par_chunks_mut(13).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v += 1 + i as u64;
            }
        });
        for (k, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (k / 13) as u64, "element {k}");
        }
    }

    #[test]
    fn par_for_each_runs_all_chunks() {
        force_multithreaded();
        let data = vec![1u8; 997];
        let count = AtomicUsize::new(0);
        data.par_chunks(10).for_each(|c| {
            count.fetch_add(c.len(), Ordering::Relaxed);
        });
        assert_eq!(count.into_inner(), 997);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_panics() {
        let data = [1u8, 2];
        data.par_chunks(0).for_each(|_| {});
    }
}
