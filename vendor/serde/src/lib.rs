//! Offline stand-in for `serde`.
//!
//! The repository derives `Serialize`/`Deserialize` on its message types to
//! mark them wire-encodable, but no code path performs serde serialization
//! yet (canonical byte encodings are hand-rolled, e.g.
//! `Element::to_bytes`).  Since the build environment cannot reach a crates
//! registry, this shim supplies the two traits as blanket-implemented
//! markers plus no-op derive macros, keeping every `#[derive(Serialize,
//! Deserialize)]` and `use serde::…` in the tree compiling unchanged.  When
//! real serialization lands, this crate is replaced by the genuine `serde`
//! with no source changes outside `vendor/`.

#![forbid(unsafe_code)]

/// Marker for types with a serializable wire form.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types constructible from a serialized wire form.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Owned variant mirroring serde's `DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
