//! # dissent
//!
//! Umbrella crate for the Rust reproduction of *Dissent in Numbers: Making
//! Strong Anonymity Scale* (OSDI 2012).  It re-exports the workspace crates
//! so examples and downstream users can depend on a single package:
//!
//! * [`crypto`] — big integers, Schnorr groups, SHA-256, ChaCha20, ElGamal,
//!   Schnorr signatures, Chaum–Pedersen proofs, message padding.
//! * [`shuffle`] — the verifiable key/message shuffles used for scheduling
//!   and accusations.
//! * [`dcnet`] — the anytrust client/server DC-net core.
//! * [`baseline`] — classic all-to-all and leader-based DC-nets used as
//!   comparison baselines.
//! * [`net`] — the discrete-event network simulator standing in for the
//!   paper's DeterLab / PlanetLab / Emulab testbeds.
//! * [`protocol`] — the full Dissent protocol: group configuration, client
//!   and server state machines, window policies, sessions and metrics.
//! * [`apps`] — microblogging, bulk sharing, SOCKS tunnelling, web browsing
//!   workloads and the Tor relay model.
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for how every table
//! and figure of the paper is regenerated.

#![forbid(unsafe_code)]

pub use dissent_apps as apps;
pub use dissent_baseline as baseline;
pub use dissent_core as protocol;
pub use dissent_crypto as crypto;
pub use dissent_dcnet as dcnet;
pub use dissent_net as net;
pub use dissent_shuffle as shuffle;
