//! `dissent-server` — host the anytrust server set behind a TCP listener.
//!
//! ```text
//! dissent-server --roster roster.txt [--bind 127.0.0.1:0] [--rounds 5]
//!                [--metrics-addr 127.0.0.1:0]
//! ```
//!
//! Prints `listening on <addr>` once the socket is bound (stdout is
//! line-buffered, so drivers can parse the port from a `--bind` on port 0),
//! then accepts and authenticates roster clients, drives the requested
//! number of rounds, and prints a one-line summary.  With `--metrics-addr`
//! the node's metric registry is additionally served in prometheus text
//! format (one HTTP/1.0 response per connection); the bound address is
//! printed as `metrics on <addr>`.

use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

use dissent_core::node::{RosterSpec, ServerNode};
use dissent_metrics::exporter::MetricsExporter;

fn usage() -> ExitCode {
    eprintln!(
        "usage: dissent-server --roster <file> [--bind <addr>] [--rounds <n>] \
         [--connect-timeout-ms <ms>] [--round-timeout-ms <ms>] [--metrics-addr <addr>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut roster = None;
    let mut bind = "127.0.0.1:0".to_string();
    let mut rounds = 5u64;
    let mut connect_timeout = Duration::from_secs(10);
    let mut round_timeout = Duration::from_secs(10);
    let mut metrics_addr = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| eprintln!("{flag} needs a value"));
        match arg.as_str() {
            "--roster" => match value("--roster") {
                Ok(v) => roster = Some(v),
                Err(()) => return usage(),
            },
            "--bind" => match value("--bind") {
                Ok(v) => bind = v,
                Err(()) => return usage(),
            },
            "--rounds" => match value("--rounds").map(|v| v.parse()) {
                Ok(Ok(v)) => rounds = v,
                _ => return usage(),
            },
            "--connect-timeout-ms" => match value("--connect-timeout-ms").map(|v| v.parse()) {
                Ok(Ok(v)) => connect_timeout = Duration::from_millis(v),
                _ => return usage(),
            },
            "--round-timeout-ms" => match value("--round-timeout-ms").map(|v| v.parse()) {
                Ok(Ok(v)) => round_timeout = Duration::from_millis(v),
                _ => return usage(),
            },
            "--metrics-addr" => match value("--metrics-addr") {
                Ok(v) => metrics_addr = Some(v),
                Err(()) => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(roster) = roster else { return usage() };

    let text = match std::fs::read_to_string(&roster) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("dissent-server: cannot read {roster}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match RosterSpec::parse(&text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("dissent-server: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut server = match ServerNode::bind(spec, &bind) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("dissent-server: bind {bind}: {e}");
            return ExitCode::FAILURE;
        }
    };
    server.connect_timeout = connect_timeout;
    server.round_timeout = round_timeout;
    match server.local_addr() {
        Ok(addr) => println!("listening on {addr}"),
        Err(e) => {
            eprintln!("dissent-server: {e}");
            return ExitCode::FAILURE;
        }
    }

    let exporter = match metrics_addr {
        Some(addr) => {
            let listener = match TcpListener::bind(&addr) {
                Ok(listener) => listener,
                Err(e) => {
                    eprintln!("dissent-server: metrics bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match MetricsExporter::spawn(listener, server.registry()) {
                Ok(exporter) => {
                    println!("metrics on {}", exporter.addr());
                    Some(exporter)
                }
                Err(e) => {
                    eprintln!("dissent-server: metrics exporter: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };

    let code = match server.run(rounds) {
        Ok(summary) => {
            println!(
                "completed rounds={} certified={} rejected_spoofs={} \
                 handshake_failures={} disconnects={}",
                summary.rounds,
                summary.certified_rounds,
                summary.rejected_spoofs,
                summary.handshake_failures,
                summary.disconnects
            );
            for (round, slot, message) in &summary.messages {
                println!(
                    "message round={round} slot={slot} bytes={}",
                    String::from_utf8_lossy(message)
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dissent-server: {e}");
            ExitCode::FAILURE
        }
    };
    // Stopped only after the summary is out, so a driver scraping until the
    // exporter goes away sees the completed run's counters.
    if let Some(exporter) = exporter {
        exporter.stop();
    }
    code
}
