//! `dissent-server` — host the anytrust server set behind a TCP listener.
//!
//! ```text
//! dissent-server --roster roster.txt [--bind 127.0.0.1:0] [--rounds 5]
//! ```
//!
//! Prints `listening on <addr>` once the socket is bound (stdout is
//! line-buffered, so drivers can parse the port from a `--bind` on port 0),
//! then accepts and authenticates roster clients, drives the requested
//! number of rounds, and prints a one-line summary.

use std::process::ExitCode;
use std::time::Duration;

use dissent_core::node::{RosterSpec, ServerNode};

fn usage() -> ExitCode {
    eprintln!(
        "usage: dissent-server --roster <file> [--bind <addr>] [--rounds <n>] \
         [--connect-timeout-ms <ms>] [--round-timeout-ms <ms>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut roster = None;
    let mut bind = "127.0.0.1:0".to_string();
    let mut rounds = 5u64;
    let mut connect_timeout = Duration::from_secs(10);
    let mut round_timeout = Duration::from_secs(10);

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| eprintln!("{flag} needs a value"));
        match arg.as_str() {
            "--roster" => match value("--roster") {
                Ok(v) => roster = Some(v),
                Err(()) => return usage(),
            },
            "--bind" => match value("--bind") {
                Ok(v) => bind = v,
                Err(()) => return usage(),
            },
            "--rounds" => match value("--rounds").map(|v| v.parse()) {
                Ok(Ok(v)) => rounds = v,
                _ => return usage(),
            },
            "--connect-timeout-ms" => match value("--connect-timeout-ms").map(|v| v.parse()) {
                Ok(Ok(v)) => connect_timeout = Duration::from_millis(v),
                _ => return usage(),
            },
            "--round-timeout-ms" => match value("--round-timeout-ms").map(|v| v.parse()) {
                Ok(Ok(v)) => round_timeout = Duration::from_millis(v),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(roster) = roster else { return usage() };

    let text = match std::fs::read_to_string(&roster) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("dissent-server: cannot read {roster}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match RosterSpec::parse(&text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("dissent-server: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut server = match ServerNode::bind(spec, &bind) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("dissent-server: bind {bind}: {e}");
            return ExitCode::FAILURE;
        }
    };
    server.connect_timeout = connect_timeout;
    server.round_timeout = round_timeout;
    match server.local_addr() {
        Ok(addr) => println!("listening on {addr}"),
        Err(e) => {
            eprintln!("dissent-server: {e}");
            return ExitCode::FAILURE;
        }
    }

    match server.run(rounds) {
        Ok(summary) => {
            println!(
                "completed rounds={} certified={} rejected_spoofs={} \
                 handshake_failures={} disconnects={}",
                summary.rounds,
                summary.certified_rounds,
                summary.rejected_spoofs,
                summary.handshake_failures,
                summary.disconnects
            );
            for (round, slot, message) in &summary.messages {
                println!(
                    "message round={round} slot={slot} bytes={}",
                    String::from_utf8_lossy(message)
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dissent-server: {e}");
            ExitCode::FAILURE
        }
    }
}
