//! `dissent-client` — join a localhost Dissent group as one roster client.
//!
//! ```text
//! dissent-client --roster roster.txt --connect 127.0.0.1:4321 --index 2 \
//!                [--post "message"]...
//! ```
//!
//! Connects to the server, proves its roster identity with the Schnorr
//! challenge–response handshake, submits one DC-net ciphertext per round,
//! and prints every anonymous message the certified cleartexts reveal.

use std::process::ExitCode;

use dissent_core::node::{run_client, NodeError, RosterSpec};

fn usage() -> ExitCode {
    eprintln!(
        "usage: dissent-client --roster <file> --connect <addr> --index <i> [--post <msg>]..."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut roster = None;
    let mut connect = None;
    let mut index = None;
    let mut posts = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let Some(value) = args.next() else {
            return usage();
        };
        match arg.as_str() {
            "--roster" => roster = Some(value),
            "--connect" => connect = Some(value),
            "--index" => match value.parse() {
                Ok(v) => index = Some(v),
                Err(_) => return usage(),
            },
            "--post" => posts.push(value.into_bytes()),
            _ => return usage(),
        }
    }
    let (Some(roster), Some(connect), Some(index)) = (roster, connect, index) else {
        return usage();
    };

    let text = match std::fs::read_to_string(&roster) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("dissent-client: cannot read {roster}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match RosterSpec::parse(&text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("dissent-client: {e}");
            return ExitCode::FAILURE;
        }
    };

    match run_client(&spec, &connect, index, posts) {
        Ok(outcome) => {
            println!(
                "done rounds_seen={} certified={} reconnects={}",
                outcome.rounds_seen, outcome.certified_rounds, outcome.reconnects
            );
            for (round, slot, message) in &outcome.delivered {
                println!(
                    "message round={round} slot={slot} bytes={}",
                    String::from_utf8_lossy(message)
                );
            }
            ExitCode::SUCCESS
        }
        // A client that reconnected but could not resync (the server's
        // replay buffer had already dropped the rounds it missed) exits
        // with a distinct code so drivers can tell "fell behind" from
        // "could not connect at all".
        Err(e @ NodeError::OutOfSync { .. }) => {
            eprintln!("dissent-client: {e}");
            ExitCode::from(3)
        }
        Err(e) => {
            eprintln!("dissent-client: {e}");
            ExitCode::FAILURE
        }
    }
}
